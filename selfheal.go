package doceph

import (
	"fmt"

	"doceph/internal/dpu"
	"doceph/internal/faultinject"
	"doceph/internal/report"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

// Self-healing experiment: both deployments run the same closed-loop
// write/verify workload through a compound failure — an OSD crash (degraded
// acting sets, then recovery traffic) followed by a sustained DPU DMA fault
// (the offload data path goes dark). The run exercises the whole
// self-healing stack at once: the circuit breaker trips the DMA session over
// to the host RPC path and re-enrolls it after probes succeed, min_size
// keeps degraded writes flowing (and ledgered) while a replica is down, and
// the recovery QoS knobs keep the post-crash backfill from starving
// foreground I/O. Everything runs on virtual time from one seed, so a run
// reproduces bit-identically (asserted by TestSelfHealDeterminism).

// BreakerConfig re-exports the DPU circuit-breaker tunables (see
// dpu.BreakerConfig).
type BreakerConfig = dpu.BreakerConfig

// DefaultBreakerConfig re-exports the calibrated breaker defaults (disabled;
// set Enable to arm them).
func DefaultBreakerConfig() BreakerConfig { return dpu.DefaultBreakerConfig() }

// SelfHealOptions controls the self-healing run.
type SelfHealOptions struct {
	// Duration is the workload length (fault windows scale with it).
	Duration Duration
	// Threads is the number of closed-loop client workers.
	Threads int
	// ObjectBytes is the write size.
	ObjectBytes int64
	// Seed seeds both clusters and every probabilistic fault draw.
	Seed int64
	// VerifyEvery makes each worker read back one of its own objects after
	// every VerifyEvery writes.
	VerifyEvery int

	// MinSize is the write-quorum floor (default 1: a PG keeps accepting
	// degraded writes down to a single surviving replica).
	MinSize int
	// RecoveryMaxPGs / RecoveryBps / RecoveryBackoffDepth are the recovery
	// QoS knobs (osd.Config); zero values take the experiment defaults.
	RecoveryMaxPGs       int
	RecoveryBps          float64
	RecoveryBackoffDepth int
	// Breaker configures the DPU circuit breaker. A zero value takes the
	// dpu defaults with timeouts scaled to Duration so the open -> half-open
	// -> closed arc fits inside the run.
	Breaker BreakerConfig

	// DisableBreaker / DisableQoS switch a mechanism off entirely — the
	// ablation axes of RunSelfHealAblation.
	DisableBreaker bool
	DisableQoS     bool
}

func (o SelfHealOptions) withDefaults() SelfHealOptions {
	if o.Duration == 0 {
		o.Duration = 60 * Second
	}
	// The 5 s heartbeat grace sets a physical floor: below ~30 s the plan's
	// crash window is never even detected and the experiment degenerates,
	// so short (e.g. -quick) durations are raised to the minimum that
	// exercises the whole arc.
	if o.Duration < 30*Second {
		o.Duration = 30 * Second
	}
	if o.Threads == 0 {
		o.Threads = 8
	}
	if o.ObjectBytes == 0 {
		o.ObjectBytes = 1 << 20
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.VerifyEvery == 0 {
		o.VerifyEvery = 4
	}
	if o.MinSize == 0 {
		o.MinSize = 1
	}
	if o.RecoveryMaxPGs == 0 {
		o.RecoveryMaxPGs = 2
	}
	if o.RecoveryBps == 0 {
		o.RecoveryBps = 64e6 // 64 MB/s backfill budget per OSD (~1/8 disk)
	}
	if o.RecoveryBackoffDepth == 0 {
		o.RecoveryBackoffDepth = 4
	}
	if !o.Breaker.Enable && !o.DisableBreaker {
		// Scale the breaker clock to the run so the re-enroll arc (open
		// timeout + CloseProbes probes) completes inside the clean tail.
		// At the full 60 s these come out to the dpu package defaults.
		b := dpu.DefaultBreakerConfig()
		b.Enable = true
		b.Window = o.Duration / 6
		b.OpenTimeout = o.Duration / 12
		b.ProbeInterval = o.Duration / 60
		o.Breaker = b
	}
	return o
}

// SelfHealPlan is the compound failure schedule: an OSD crash-and-restart
// early (degraded writes once the heartbeat grace expires and the monitor
// publishes the failure, then recovery on rejoin), and a sustained total DMA
// fault on node0 later (the breaker must open, fail traffic over to the host
// path, and re-enroll once the window closes). The crash window must
// comfortably exceed the 5 s heartbeat grace or the failure is never
// detected; the final ~25% of the run is fault-free so the breaker can walk
// open -> half-open -> closed and the backfill can proceed under QoS.
func SelfHealPlan(d Duration) FaultPlan {
	frac := func(f float64) Duration { return Duration(float64(d) * f) }
	return FaultPlan{Name: "selfheal", Events: []FaultEvent{
		{At: frac(0.10), Duration: frac(0.35), Kind: FaultOSDCrash, OSD: 1},
		{At: frac(0.55), Duration: frac(0.20), Kind: FaultDMAError, Node: "node0", Prob: 1.0},
	}}
}

// SelfHealModeResult is one deployment's behaviour under the plan.
type SelfHealModeResult struct {
	Mode string

	// Workload outcome.
	Ops    int64
	Errors int64
	// Integrity: inline reads during the faults plus a full post-run pass.
	IntegrityChecked, IntegrityOK int64

	// Degraded-write machinery (min_size gate).
	DegradedWrites, NoQuorumRejects, DegradedPGsHealed int64
	// NoQuorumWaits counts client retry rounds spent below min_size.
	NoQuorumWaits int64

	// Recovery QoS.
	ObjectsRecovered, PGsBackfilled, RecoveryBytes, RecoveryBackoffs int64
	RecoveryThrottle                                                 Duration

	// Circuit breaker (all-node sums; zero on Baseline, which has no DPU).
	BreakerOpens, BreakerHalfOpens, BreakerCloses int64
	ProbeSuccesses, ProbeFailures                 int64
	// FallbackTxns counts transactions the proxy shipped over the host RPC
	// path; DataPlaneTxns went over DMA.
	FallbackTxns, DataPlaneTxns int64
	DMAErrors                   int64
	// BreakerFinal is node0's breaker state at run end ("" without one).
	BreakerFinal string

	// Per-second write throughput, clean-second mean, worst in-window
	// second relative to it, and recovery time after the last window.
	MBps            []float64
	CleanMBps       float64
	DipPct          float64
	RecoverySeconds float64
}

// SelfHealResult compares both deployments under the identical plan.
type SelfHealResult struct {
	PlanName string
	Seed     int64
	Baseline SelfHealModeResult
	DoCeph   SelfHealModeResult
}

// RunSelfHeal executes the self-healing workload on both deployments under
// plan (nil selects SelfHealPlan).
func RunSelfHeal(opts SelfHealOptions, plan *FaultPlan) (SelfHealResult, error) {
	opts = opts.withDefaults()
	pl := SelfHealPlan(opts.Duration)
	if plan != nil {
		pl = *plan
	}
	out := SelfHealResult{PlanName: pl.Name, Seed: opts.Seed}
	for _, m := range []struct {
		mode Mode
		dst  *SelfHealModeResult
	}{{Baseline, &out.Baseline}, {DoCeph, &out.DoCeph}} {
		r, err := runSelfHealMode(m.mode, opts, pl)
		if err != nil {
			return out, fmt.Errorf("selfheal %v: %w", m.mode, err)
		}
		*m.dst = r
	}
	return out, nil
}

// selfHealClusterConfig maps the options onto a cluster: the min_size floor,
// the recovery QoS knobs and the bridge breaker (the latter only takes
// effect on DoCeph nodes).
func selfHealClusterConfig(mode Mode, opts SelfHealOptions) ClusterConfig {
	cfg := ClusterConfig{Mode: mode, Seed: opts.Seed, MinSize: opts.MinSize}
	if !opts.DisableQoS {
		cfg.OSD.RecoveryMaxPGs = opts.RecoveryMaxPGs
		cfg.OSD.RecoveryBps = opts.RecoveryBps
		cfg.OSD.RecoveryBackoffDepth = opts.RecoveryBackoffDepth
	}
	if !opts.DisableBreaker {
		cfg.Bridge.Breaker = opts.Breaker
	}
	return cfg
}

func runSelfHealMode(mode Mode, opts SelfHealOptions, plan FaultPlan) (SelfHealModeResult, error) {
	cl := NewCluster(selfHealClusterConfig(mode, opts))
	defer cl.Shutdown()
	res := SelfHealModeResult{Mode: mode.String()}

	inj := faultinject.New(cl.Env, cl.FaultTargets())
	if err := inj.Run(plan); err != nil {
		return res, fmt.Errorf("fault plan rejected: %w", err)
	}

	payload := make([]byte, opts.ObjectBytes)
	for i := range payload {
		payload[i] = byte(i * 2654435761)
	}
	wantCRC := wire.FromBytes(payload).CRC32C()

	var (
		stopped  bool
		perSecBy []int64
		written  = make([][]string, opts.Threads)
	)
	start := cl.Env.Now()
	record := func(end sim.Time, bytes int64) {
		sec := int(end.Sub(start) / sim.Duration(sim.Second))
		for len(perSecBy) <= sec {
			perSecBy = append(perSecBy, 0)
		}
		perSecBy[sec] += bytes
	}
	verify := func(p *sim.Proc, obj string) {
		bl, err := cl.Client.Read(p, obj, 0, 0)
		if err != nil {
			res.Errors++
			return
		}
		res.IntegrityChecked++
		if bl.CRC32C() == wantCRC {
			res.IntegrityOK++
		}
	}

	workersDone := 0
	for w := 0; w < opts.Threads; w++ {
		worker := w
		cl.Env.Spawn(fmt.Sprintf("selfheal-worker-%d", w), func(p *sim.Proc) {
			p.SetThread(sim.NewThread(fmt.Sprintf("selfheal-%d", worker), "client"))
			defer func() { workersDone++ }()
			for i := 0; !stopped; i++ {
				obj := fmt.Sprintf("selfheal_w%d_%d", worker, i)
				res.Ops++
				if err := cl.Client.Write(p, obj, wire.FromBytes(payload)); err != nil {
					res.Errors++
					continue
				}
				written[worker] = append(written[worker], obj)
				record(p.Now(), opts.ObjectBytes)
				if n := len(written[worker]); n > 0 && n%opts.VerifyEvery == 0 {
					pick := written[worker][cl.Env.Rand().Intn(n)]
					res.Ops++
					verify(p, pick)
				}
			}
		})
	}
	cl.Env.Spawn("selfheal-controller", func(p *sim.Proc) {
		p.Wait(opts.Duration)
		stopped = true
	})
	for !stopped {
		if err := cl.Env.RunUntil(cl.Env.Now().Add(sim.Second)); err != nil {
			return res, err
		}
	}
	for workersDone < opts.Threads {
		if err := cl.Env.RunUntil(cl.Env.Now().Add(sim.Second)); err != nil {
			return res, err
		}
	}

	// Post-run: let the backfill tail drain under its QoS budget, then
	// verify every object the workload managed to write.
	verifyDone := false
	cl.Env.Spawn("selfheal-verify", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("selfheal-verify", "client"))
		p.Wait(opts.Duration / 6)
		for _, objs := range written {
			for _, obj := range objs {
				verify(p, obj)
			}
		}
		verifyDone = true
	})
	for !verifyDone {
		if err := cl.Env.RunUntil(cl.Env.Now().Add(5 * sim.Second)); err != nil {
			return res, err
		}
	}

	// Collect counters.
	res.NoQuorumWaits = cl.Client.Stats().NoQuorumWaits
	for _, n := range cl.Nodes {
		os := n.OSD.Stats()
		res.DegradedWrites += os.DegradedWrites
		res.NoQuorumRejects += os.NoQuorumRejects
		res.DegradedPGsHealed += os.DegradedPGsHealed
		res.ObjectsRecovered += os.ObjectsRecovered
		res.PGsBackfilled += os.PGsBackfilled
		res.RecoveryBytes += os.RecoveryBytes
		res.RecoveryBackoffs += os.RecoveryBackoffs
		res.RecoveryThrottle += os.RecoveryThrottle
		if n.Bridge != nil {
			ps := n.Bridge.Proxy.Stats()
			res.FallbackTxns += ps.FallbackTxns
			res.DataPlaneTxns += ps.DataPlaneTxns
			res.DMAErrors += n.Bridge.EngUp.Stats().Errors + n.Bridge.EngDown.Stats().Errors
			if br := n.Bridge.Proxy.Breaker(); br != nil {
				bs := br.Stats()
				res.BreakerOpens += bs.Opens
				res.BreakerHalfOpens += bs.HalfOpens
				res.BreakerCloses += bs.Closes
				res.ProbeSuccesses += bs.ProbeSuccesses
				res.ProbeFailures += bs.ProbeFailures
			}
		}
	}
	if len(cl.Nodes) > 0 && cl.Nodes[0].Bridge != nil {
		if br := cl.Nodes[0].Bridge.Proxy.Breaker(); br != nil {
			res.BreakerFinal = br.State().String()
		}
	}

	for _, b := range perSecBy {
		res.MBps = append(res.MBps, float64(b)/1e6)
	}
	res.CleanMBps, res.DipPct, res.RecoverySeconds = chaosDipRecovery(res.MBps, plan)
	return res, nil
}

// SelfHealTable renders the comparison.
func SelfHealTable(r SelfHealResult) *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Self-healing: plan %q, seed %d — Baseline vs DoCeph", r.PlanName, r.Seed),
		Header: []string{"metric", "Baseline", "DoCeph"},
	}
	row := func(name string, b, d int64) { t.AddRow(name, fmt.Sprint(b), fmt.Sprint(d)) }
	row("ops issued", r.Baseline.Ops, r.DoCeph.Ops)
	row("typed errors", r.Baseline.Errors, r.DoCeph.Errors)
	row("integrity checked", r.Baseline.IntegrityChecked, r.DoCeph.IntegrityChecked)
	row("integrity ok", r.Baseline.IntegrityOK, r.DoCeph.IntegrityOK)
	row("degraded writes", r.Baseline.DegradedWrites, r.DoCeph.DegradedWrites)
	row("no-quorum rejects", r.Baseline.NoQuorumRejects, r.DoCeph.NoQuorumRejects)
	row("degraded PGs healed", r.Baseline.DegradedPGsHealed, r.DoCeph.DegradedPGsHealed)
	row("objects recovered", r.Baseline.ObjectsRecovered, r.DoCeph.ObjectsRecovered)
	row("PGs backfilled", r.Baseline.PGsBackfilled, r.DoCeph.PGsBackfilled)
	row("recovery bytes", r.Baseline.RecoveryBytes, r.DoCeph.RecoveryBytes)
	row("recovery backoffs", r.Baseline.RecoveryBackoffs, r.DoCeph.RecoveryBackoffs)
	t.AddRow("recovery throttle (ms)",
		fmt.Sprint(int64(r.Baseline.RecoveryThrottle)/1e6),
		fmt.Sprint(int64(r.DoCeph.RecoveryThrottle)/1e6))
	row("DMA errors", r.Baseline.DMAErrors, r.DoCeph.DMAErrors)
	row("breaker opens", r.Baseline.BreakerOpens, r.DoCeph.BreakerOpens)
	row("breaker half-opens", r.Baseline.BreakerHalfOpens, r.DoCeph.BreakerHalfOpens)
	row("breaker closes", r.Baseline.BreakerCloses, r.DoCeph.BreakerCloses)
	row("probe successes", r.Baseline.ProbeSuccesses, r.DoCeph.ProbeSuccesses)
	row("host-path fallback txns", r.Baseline.FallbackTxns, r.DoCeph.FallbackTxns)
	t.AddRow("breaker final state", orDash(r.Baseline.BreakerFinal), orDash(r.DoCeph.BreakerFinal))
	t.AddRow("clean MB/s", report.F2(r.Baseline.CleanMBps), report.F2(r.DoCeph.CleanMBps))
	t.AddRow("worst dip (% of clean)", report.F2(r.Baseline.DipPct), report.F2(r.DoCeph.DipPct))
	t.AddRow("recovery (s)", report.F2(r.Baseline.RecoverySeconds), report.F2(r.DoCeph.RecoverySeconds))
	t.AddNote("identical fault schedule on both deployments: OSD crash + sustained DMA fault")
	if r.DoCeph.BreakerOpens > 0 && r.DoCeph.BreakerFinal == "closed" {
		t.AddNote("breaker completed the open -> half-open -> closed arc and re-enrolled DMA")
	}
	if r.Baseline.IntegrityChecked == r.Baseline.IntegrityOK &&
		r.DoCeph.IntegrityChecked == r.DoCeph.IntegrityOK {
		t.AddNote("payload integrity: 100%% of verified reads matched the written CRC32C")
	}
	return t
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// SelfHealAblationRow is one DoCeph run of the breaker x QoS grid.
type SelfHealAblationRow struct {
	Variant          string
	CleanMBps        float64
	DipPct           float64
	RecoverySeconds  float64
	Errors           int64
	FallbackTxns     int64
	RecoveryBackoffs int64
	IntegrityOK      int64
	IntegrityChecked int64
	BreakerFinal     string
}

// RunSelfHealAblation runs the DoCeph deployment through the selfheal plan
// with each combination of the two mechanisms, plus a fault-free reference
// row — the marginal value of the breaker and of recovery QoS under the
// identical failure schedule.
func RunSelfHealAblation(opts SelfHealOptions) ([]SelfHealAblationRow, error) {
	opts = opts.withDefaults()
	plan := SelfHealPlan(opts.Duration)
	variants := []struct {
		name         string
		breaker, qos bool
		plan         FaultPlan
	}{
		{"no faults (reference)", true, true, FaultPlan{Name: "none"}},
		{"breaker off, QoS off", false, false, plan},
		{"breaker on,  QoS off", true, false, plan},
		{"breaker off, QoS on", false, true, plan},
		{"breaker on,  QoS on", true, true, plan},
	}
	var rows []SelfHealAblationRow
	for _, v := range variants {
		o := opts
		o.DisableBreaker = !v.breaker
		o.DisableQoS = !v.qos
		if o.DisableBreaker {
			o.Breaker = BreakerConfig{}
		}
		r, err := runSelfHealMode(DoCeph, o, v.plan)
		if err != nil {
			return rows, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		rows = append(rows, SelfHealAblationRow{
			Variant:          v.name,
			CleanMBps:        r.CleanMBps,
			DipPct:           r.DipPct,
			RecoverySeconds:  r.RecoverySeconds,
			Errors:           r.Errors,
			FallbackTxns:     r.FallbackTxns,
			RecoveryBackoffs: r.RecoveryBackoffs,
			IntegrityOK:      r.IntegrityOK,
			IntegrityChecked: r.IntegrityChecked,
			BreakerFinal:     r.BreakerFinal,
		})
	}
	return rows, nil
}

// SelfHealAblationTable renders the breaker x QoS grid.
func SelfHealAblationTable(rows []SelfHealAblationRow) *report.Table {
	t := &report.Table{
		Title: "Self-healing ablation (DoCeph, identical fault schedule)",
		Header: []string{"variant", "clean MB/s", "dip %", "recovery s",
			"errors", "fallback txns", "backoffs", "integrity", "breaker"},
	}
	for _, r := range rows {
		t.AddRow(r.Variant, report.F2(r.CleanMBps), report.F2(r.DipPct),
			report.F2(r.RecoverySeconds), fmt.Sprint(r.Errors),
			fmt.Sprint(r.FallbackTxns), fmt.Sprint(r.RecoveryBackoffs),
			fmt.Sprintf("%d/%d", r.IntegrityOK, r.IntegrityChecked),
			orDash(r.BreakerFinal))
	}
	t.AddNote("dip %% is the worst in-fault-window second relative to the clean mean (100 = no dip)")
	return t
}

package doceph

import (
	"fmt"

	"doceph/internal/report"
)

// ---------------------------------------------------------------------------
// Extension: multi-queue DMA engine ablation. PR 4's gap analysis concluded
// the residual small-op gap "needs engine parallelism, not more batching":
// one serial engine caps frame throughput at ~1/setup-time regardless of
// frame size. This sweep measures batched DoCeph with 1/2/4/8 DMA queues
// (and a matching number of OSD op-queue shards) across the small-op sizes.

// MultiQueueCell is one (size x queues) cell of the multi-queue ablation.
type MultiQueueCell struct {
	SizeBytes int64
	Queues    int
	IOPS      float64
	// GainPct is the IOPS gain versus the 1-queue cell at the same size.
	GainPct      float64
	AvgLat       Duration
	HostUtil     float64
	AvgBatchSize float64
	// Occupancy is the fraction of aggregate queue capacity the upstream
	// engines spent servicing transfers (EngineStats.Busy over the run).
	Occupancy float64
}

// MultiQueueCounts is the default queue sweep of the ablation.
var MultiQueueCounts = []int{1, 2, 4, 8}

// MultiQueueSizes are the default request sizes: the small-op regime where
// the serial engine is the binding constraint.
var MultiQueueSizes = []int64{4 << 10, 16 << 10, 64 << 10}

// RunMultiQueueSweep measures batched DoCeph at every (size x queues)
// combination, pairing each queue count with the same number of OSD op
// shards. All cells run as independent parallel simulations.
func RunMultiQueueSweep(opts ExpOptions, queues []int, sizes []int64) ([]MultiQueueCell, error) {
	opts = opts.withDefaults()
	if len(queues) == 0 {
		queues = MultiQueueCounts
	}
	if len(sizes) == 0 {
		sizes = MultiQueueSizes
	}
	out := make([]MultiQueueCell, len(sizes)*len(queues))
	err := runParallel(len(out), func(i int) error {
		size, nq := sizes[i/len(queues)], queues[i%len(queues)]
		r, err := runWorkloadCfg(DoCeph, Link100G, size, BenchConfig{}, opts,
			func(c *ClusterConfig) {
				c.Bridge.Batch = opts.Batch
				c.Bridge.Batch.Enable = true
				c.Bridge.Engine.Queues = nq
				c.OSD.OpShards = nq
				if c.Messenger.Lanes = opts.MsgrLanes; c.Messenger.Lanes == 0 {
					c.Messenger.Lanes = nq
				}
			})
		if err != nil {
			return fmt.Errorf("mq %dKB q=%d: %w", size>>10, nq, err)
		}
		cell := MultiQueueCell{
			SizeBytes: size,
			Queues:    nq,
			IOPS:      r.bench.IOPS(),
			AvgLat:    r.bench.AvgLatency,
			HostUtil:  r.hostUtil,
			Occupancy: r.engineOccupancy(opts.Duration + opts.Warmup),
		}
		if r.batchFlushes > 0 {
			cell.AvgBatchSize = float64(r.batchedTxns) / float64(r.batchFlushes)
		}
		out[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Gains are relative to the first queue count of each size group
	// (conventionally 1, the serial engine).
	for i := range out {
		ref := out[i/len(queues)*len(queues)]
		if ref.IOPS > 0 {
			out[i].GainPct = (out[i].IOPS/ref.IOPS - 1) * 100
		}
	}
	return out, nil
}

// MultiQueueTable renders the multi-queue ablation.
func MultiQueueTable(rows []MultiQueueCell) *report.Table {
	t := &report.Table{
		Title: "Multi-queue DMA ablation: batched DoCeph, queues = OSD op shards",
		Header: []string{"size", "queues", "IOPS", "gain vs q=1", "avg lat (s)",
			"avg batch", "host CPU", "engine occupancy"},
	}
	for _, r := range rows {
		t.AddRow(report.KB(r.SizeBytes), fmt.Sprint(r.Queues), report.F2(r.IOPS),
			fmt.Sprintf("%+.0f%%", r.GainPct), report.F3(r.AvgLat.Seconds()),
			report.F2(r.AvgBatchSize), report.Pct(r.HostUtil), report.Pct(r.Occupancy))
	}
	t.AddNote("the serial engine (q=1) caps frame throughput at ~1/setup-time; parallel queues overlap setups while copies share CopySlots PCIe bus slots")
	return t
}

package doceph

import (
	"testing"

	"doceph/internal/sim"
	"doceph/internal/wire"
)

// tinyOpts keeps the experiment API tests fast while preserving shapes.
func tinyOpts() ExpOptions {
	return ExpOptions{Duration: 3 * Second, Warmup: Second, Threads: 8, Seed: 42}
}

func TestPublicQuickstartFlow(t *testing.T) {
	cl := NewCluster(ClusterConfig{Mode: DoCeph})
	defer cl.Shutdown()
	done := false
	cl.Env.Spawn("t", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("t", "client"))
		data := wire.FromBytes(make([]byte, 1<<20))
		if err := cl.Client.Write(p, "o", data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		got, err := cl.Client.Read(p, "o", 0, 0)
		if err != nil || got.Length() != 1<<20 {
			t.Errorf("read: %v", err)
			return
		}
		done = true
	})
	if err := cl.Env.RunUntil(sim.Time(60 * sim.Second)); err != nil || !done {
		t.Fatalf("err=%v done=%v", err, done)
	}
}

func TestRunBenchResetsStatsAtWarmup(t *testing.T) {
	cl := NewCluster(ClusterConfig{Mode: Baseline})
	defer cl.Shutdown()
	res, err := RunBench(cl, BenchConfig{
		Threads: 4, ObjectBytes: 1 << 20,
		Duration: 2 * Second, Warmup: Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
	m := cl.HostCPUMerged()
	// The accounting window must cover only the measured phase.
	if w := m.Window; w < 2*Second-Millisecond || w > 2*Second+Second {
		t.Fatalf("window=%v", w)
	}
}

func TestSizeSweepPaperShape(t *testing.T) {
	rows, err := RunSizeSweep(tinyOpts(), []int64{1 << 20, 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		// The headline claim: order-of-magnitude host CPU savings.
		if r.DoCephUtil > r.BaselineUtil/4 {
			t.Fatalf("%dMB: DoCeph %.3f vs baseline %.3f", r.SizeBytes>>20,
				r.DoCephUtil, r.BaselineUtil)
		}
		if r.SavingPct < 75 {
			t.Fatalf("%dMB saving=%.1f%%", r.SizeBytes>>20, r.SavingPct)
		}
		if r.BaselineIOPS <= 0 || r.DoCephIOPS <= 0 {
			t.Fatalf("iops=%v/%v", r.BaselineIOPS, r.DoCephIOPS)
		}
		b := r.Breakdown
		if b.Total <= 0 || b.HostWrite <= 0 || b.DMA <= 0 {
			t.Fatalf("breakdown=%+v", b)
		}
		if b.HostWrite+b.DMA+b.DMAWait > b.Total {
			t.Fatalf("%dMB phases exceed total: %+v", r.SizeBytes>>20, b)
		}
	}
	// 1 MB pays a larger relative penalty than 8 MB (pipelining).
	small, large := rows[0], rows[1]
	smallGap := 1 - small.DoCephIOPS/small.BaselineIOPS
	largeGap := 1 - large.DoCephIOPS/large.BaselineIOPS
	if smallGap <= largeGap {
		t.Fatalf("gap did not shrink with size: 1MB %.2f vs 8MB %.2f", smallGap, largeGap)
	}
	// Baseline CPU falls with size; DoCeph stays flat(ish).
	if small.BaselineUtil <= large.BaselineUtil {
		t.Fatalf("baseline util should fall with size: %.3f -> %.3f",
			small.BaselineUtil, large.BaselineUtil)
	}
}

func TestMessengerProfilePaperShape(t *testing.T) {
	p, err := RunMessengerProfile(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, lp := range []LinkProfile{p.OneG, p.HundredG} {
		if lp.MsgrShare < 0.6 {
			t.Fatalf("%s messenger share=%.2f, must dominate", lp.LinkName, lp.MsgrShare)
		}
	}
	// 100G moves much more data yet the messenger share stays ~constant —
	// the paper's CPU-bound (not link-bound) argument.
	if p.HundredG.ThroughputMBps < 3*p.OneG.ThroughputMBps {
		t.Fatalf("throughputs %v vs %v", p.OneG.ThroughputMBps, p.HundredG.ThroughputMBps)
	}
	diff := p.HundredG.MsgrShare - p.OneG.MsgrShare
	if diff < -0.1 || diff > 0.1 {
		t.Fatalf("messenger share not link-invariant: %.2f vs %.2f",
			p.OneG.MsgrShare, p.HundredG.MsgrShare)
	}
	if p.HundredG.MsgrSwitches < 4*p.HundredG.ObjSwitches {
		t.Fatalf("switch ratio too small: %d vs %d",
			p.HundredG.MsgrSwitches, p.HundredG.ObjSwitches)
	}
	// Tables render without panicking and carry the rows.
	for _, tb := range []interface{ String() string }{
		p.Fig5Table(), p.Fig6Table(), p.Table2(),
	} {
		if len(tb.String()) == 0 {
			t.Fatal("empty table")
		}
	}
}

func TestReadSweepConverges(t *testing.T) {
	rows, err := RunReadSweep(tinyOpts(), []int64{1 << 20, 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	smallGap := 1 - rows[0].DoCephIOPS/rows[0].BaselineIOPS
	largeGap := 1 - rows[1].DoCephIOPS/rows[1].BaselineIOPS
	if smallGap <= largeGap {
		t.Fatalf("read gap did not shrink: %.2f -> %.2f", smallGap, largeGap)
	}
	if len(ReadTable(rows).String()) == 0 {
		t.Fatal("empty read table")
	}
}

func TestSweepTablesRender(t *testing.T) {
	rows, err := RunSizeSweep(tinyOpts(), []int64{1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []interface{ String() string }{
		Fig7Table(rows), Fig8Table(rows), Table3(rows), Fig9Table(rows), Fig10Table(rows),
	} {
		if len(tb.String()) == 0 {
			t.Fatal("empty table")
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (float64, float64) {
		cl := NewCluster(ClusterConfig{Mode: DoCeph, Seed: 7})
		defer cl.Shutdown()
		res, err := RunBench(cl, BenchConfig{
			Threads: 8, ObjectBytes: 4 << 20,
			Duration: 2 * Second, Warmup: Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.IOPS(), cl.HostCPUMerged().SingleCoreUtilization()
	}
	i1, u1 := run()
	i2, u2 := run()
	if i1 != i2 || u1 != u2 {
		t.Fatalf("non-deterministic: iops %v vs %v, util %v vs %v", i1, i2, u1, u2)
	}
}

func TestStabilityLowVariance(t *testing.T) {
	r, err := RunStability(ExpOptions{Duration: 5 * Second, Warmup: Second, Threads: 16}, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Baseline.MBps) < 4 || len(r.DoCeph.MBps) < 4 {
		t.Fatalf("series too short: %d/%d", len(r.Baseline.MBps), len(r.DoCeph.MBps))
	}
	// The abstract's claim: stable throughput. Coefficient of variation
	// under 10% for both deployments.
	if r.Baseline.StddevPct > 10 || r.DoCeph.StddevPct > 10 {
		t.Fatalf("unstable: baseline cv=%.1f%% doceph cv=%.1f%%",
			r.Baseline.StddevPct, r.DoCeph.StddevPct)
	}
	if len(StabilityTable(r).String()) == 0 {
		t.Fatal("empty table")
	}
}

func TestScaleSweepSavingsPersist(t *testing.T) {
	rows, err := RunScaleSweep(ExpOptions{Duration: 3 * Second, Warmup: Second, Threads: 8},
		[]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SavingPct < 75 {
			t.Fatalf("%d nodes: saving=%.1f%%", r.Nodes, r.SavingPct)
		}
	}
	// Aggregate throughput grows with the cluster.
	if rows[1].DoCephMBps < rows[0].DoCephMBps*1.3 {
		t.Fatalf("throughput did not scale: %v -> %v", rows[0].DoCephMBps, rows[1].DoCephMBps)
	}
	if len(ScaleTable(rows).String()) == 0 {
		t.Fatal("empty table")
	}
}

// TestConclusionRobustToCalibration: the headline result (order-of-magnitude
// host CPU saving) must not depend on the exact calibration constants.
// Perturb the dominant messenger costs by +-30% and re-check.
func TestConclusionRobustToCalibration(t *testing.T) {
	for _, scale := range []float64{0.7, 1.3} {
		run := func(mode Mode) float64 {
			cfg := ClusterConfig{Mode: mode, Seed: 42}
			cfg.Messenger.TxCopyCyclesPerByte = 1.05 * scale
			cfg.Messenger.RxCopyCyclesPerByte = 1.05 * scale
			cfg.Messenger.EncodeCycles = int64(120_000 * scale)
			cfg.Messenger.DecodeCycles = int64(100_000 * scale)
			cl := NewCluster(cfg)
			defer cl.Shutdown()
			if _, err := RunBench(cl, BenchConfig{
				Threads: 16, ObjectBytes: 4 << 20,
				Duration: 3 * Second, Warmup: Second,
			}); err != nil {
				t.Fatal(err)
			}
			return cl.HostCPUMerged().SingleCoreUtilization()
		}
		base, dc := run(Baseline), run(DoCeph)
		saving := (1 - dc/base) * 100
		if saving < 80 {
			t.Fatalf("scale %.1f: saving fell to %.1f%%", scale, saving)
		}
	}
}

// TestSeedSensitivity: different seeds must give closely agreeing results
// (the jittered DMA engine is the only stochastic element).
func TestSeedSensitivity(t *testing.T) {
	iops := func(seed int64) float64 {
		cl := NewCluster(ClusterConfig{Mode: DoCeph, Seed: seed})
		defer cl.Shutdown()
		res, err := RunBench(cl, BenchConfig{
			Threads: 16, ObjectBytes: 4 << 20,
			Duration: 4 * Second, Warmup: Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.IOPS()
	}
	a, b, c := iops(1), iops(999), iops(123456)
	mean := (a + b + c) / 3
	for _, v := range []float64{a, b, c} {
		if v < mean*0.95 || v > mean*1.05 {
			t.Fatalf("seed variance too high: %v %v %v", a, b, c)
		}
	}
}

package doceph

import (
	"fmt"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/sim"
	"doceph/internal/trace"
)

// TestMultiSeedDeterminism widens the golden determinism gate from one
// pinned seed to a sweep: for every seed, running the traced golden
// scenario twice must reproduce every headline metric AND the byte-exact
// trace bit-identically, and each run must satisfy the structural span
// invariants and CPU conservation. A scheduling hazard that happens to
// cancel out at seed 42 has to survive eight more orderings here.
func TestMultiSeedDeterminism(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 42, 1337}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			type runOut struct {
				metrics goldenMetrics
				hash    string
			}
			run := func() runOut {
				m, cl := runSeededScenario(t, cluster.DoCeph, true, seed, sim.Second)
				defer cl.Shutdown()
				spans := cl.Tracer.Spans()
				if len(spans) == 0 {
					t.Fatal("no spans recorded")
				}
				if err := trace.CheckInvariants(spans); err != nil {
					t.Errorf("trace invariants: %v", err)
				}
				busy := map[string]Duration{cl.ClientCPU.Name(): cl.ClientCPU.Stats().TotalBusy}
				for _, n := range cl.Nodes {
					busy[n.HostCPU.Name()] = n.HostCPU.Stats().TotalBusy
					if n.DPU != nil {
						busy[n.DPU.CPU.Name()] = n.DPU.CPU.Stats().TotalBusy
					}
				}
				if err := trace.CheckCPUConservation(spans, busy); err != nil {
					t.Errorf("CPU conservation: %v", err)
				}
				return runOut{metrics: m, hash: chromeHash(spans)}
			}
			a, b := run(), run()
			if a.metrics != b.metrics {
				t.Errorf("metrics differ across identical runs:\n 1: %+v\n 2: %+v",
					a.metrics, b.metrics)
			}
			if a.hash != b.hash {
				t.Errorf("trace output differs across identical runs: %s vs %s",
					a.hash, b.hash)
			}
		})
	}
}

// TestMultiSeedDeterminismBatched is the same run-twice gate with the
// batching daemons live, covering the new virtual-time machinery (adaptive
// flush loop, notify coalescer, in-flight backpressure) at a size that
// exercises the batched path.
func TestMultiSeedDeterminismBatched(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 42}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := func() (int64, int64, uint64, string) {
				cfg := cluster.Config{Mode: cluster.DoCeph, Seed: seed, Trace: true}
				cfg.Bridge.Batch.Enable = true
				cl := cluster.New(cfg)
				defer cl.Shutdown()
				res, err := RunBench(cl, BenchConfig{
					Threads: 8, ObjectBytes: 64 << 10,
					Duration: sim.Second, Warmup: 200 * sim.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				spans := cl.Tracer.Spans()
				if err := trace.CheckInvariants(spans); err != nil {
					t.Errorf("trace invariants: %v", err)
				}
				var batched int64
				for _, n := range cl.Nodes {
					batched += n.Bridge.Proxy.Stats().BatchedTxns
				}
				if batched == 0 {
					t.Error("no transactions batched")
				}
				return res.Ops, int64(res.AvgLatency), cl.Env.Events(), chromeHash(spans)
			}
			o1, l1, e1, h1 := run()
			o2, l2, e2, h2 := run()
			if o1 != o2 || l1 != l2 || e1 != e2 || h1 != h2 {
				t.Errorf("batched run not deterministic: ops %d/%d lat %d/%d events %d/%d trace %s/%s",
					o1, o2, l1, l2, e1, e2, h1, h2)
			}
		})
	}
}

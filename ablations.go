package doceph

import (
	"fmt"

	"doceph/internal/report"
)

// AblationResult is one row of the design-choice ablation study: what each
// of DoCeph's §3.3/§4 mechanisms buys.
type AblationResult struct {
	Name         string
	SizeBytes    int64
	AvgLatency   Duration
	IOPS         float64
	HostUtil     float64
	Negotiations int64
	FallbackSegs int64
	DMAErrors    int64
	BatchedTxns  int64
	BatchFlushes int64
}

// RunAblations measures DoCeph with individual mechanisms disabled or
// stressed: pipelining off, MR cache off, smaller staging buffers, extra
// DMA channels, and injected DMA failures exercising the fallback/cooldown
// machinery. Pipeline/MR/staging variants run at 16 MB (where segmentation
// matters); channel variants at 1 MB (where the single engine is the
// bottleneck, Figure 10's -30%).
func RunAblations(opts ExpOptions) ([]AblationResult, error) {
	opts = opts.withDefaults()

	type variant struct {
		name   string
		size   int64
		mut    func(*ClusterConfig)
		inject int64 // engine FailEvery
	}
	const big, small, tiny = int64(16 << 20), int64(1 << 20), int64(64 << 10)
	variants := []variant{
		{name: "doceph (full design)", size: big},
		{name: "no pipelining", size: big, mut: func(c *ClusterConfig) {
			c.Bridge.Proxy.DisablePipeline = true
		}},
		{name: "no MR cache", size: big, mut: func(c *ClusterConfig) {
			c.Bridge.Proxy.DisableMRCache = true
		}},
		{name: "1MB staging buffers", size: big, mut: func(c *ClusterConfig) {
			c.DPU.StagingBufferBytes = 1 << 20
		}},
		{name: "512KB staging buffers", size: big, mut: func(c *ClusterConfig) {
			c.DPU.StagingBufferBytes = 512 << 10
		}},
		{name: "DMA failure every 200 transfers", size: big, inject: 200},
		{name: "1MB writes, 1 DMA channel", size: small},
		{name: "1MB writes, 2 DMA channels", size: small, mut: func(c *ClusterConfig) {
			c.Bridge.Engine.Channels = 2
		}},
		{name: "1MB writes, 4 DMA channels", size: small, mut: func(c *ClusterConfig) {
			c.Bridge.Engine.Channels = 4
		}},
		{name: "1MB writes, DPU compression (2:1)", size: small, mut: func(c *ClusterConfig) {
			c.Bridge.Proxy.EnableCompression = true
		}},
		// Batching variants at 64 KB, where per-op DMA setup dominates and
		// coalescing pays the most.
		{name: "64KB writes, no batching", size: tiny},
		{name: "64KB writes, adaptive batching", size: tiny, mut: func(c *ClusterConfig) {
			c.Bridge.Batch.Enable = true
		}},
		{name: "64KB writes, delay-only batching", size: tiny, mut: func(c *ClusterConfig) {
			// Disable the idle heuristic by making the idle gap equal the
			// max-delay budget: flushes come only from bytes or the timer.
			c.Bridge.Batch.Enable = true
			c.Bridge.Batch.IdleDelay = 400 * Microsecond
			c.Bridge.Batch.MaxDelay = 400 * Microsecond
		}},
		{name: "64KB writes, batching + DMA failure every 200", size: tiny, inject: 200, mut: func(c *ClusterConfig) {
			c.Bridge.Batch.Enable = true
		}},
	}

	out := make([]AblationResult, len(variants))
	err := runParallel(len(variants), func(i int) error {
		v := variants[i]
		cfg := ClusterConfig{Mode: DoCeph, Seed: opts.Seed}
		if v.mut != nil {
			v.mut(&cfg)
		}
		cl := NewCluster(cfg)
		defer cl.Shutdown()
		if v.inject > 0 {
			for _, n := range cl.Nodes {
				n.Bridge.EngUp.FailEvery = v.inject
			}
		}
		bench, err := RunBench(cl, BenchConfig{
			Threads: opts.Threads, ObjectBytes: v.size,
			Duration: opts.Duration, Warmup: opts.Warmup,
		})
		if err != nil {
			return fmt.Errorf("ablation %q: %w", v.name, err)
		}
		res := AblationResult{
			Name:       v.name,
			SizeBytes:  v.size,
			AvgLatency: bench.AvgLatency,
			IOPS:       bench.IOPS(),
			HostUtil:   cl.HostCPUMerged().SingleCoreUtilization(),
		}
		for _, n := range cl.Nodes {
			st := n.Bridge.Proxy.Stats()
			res.Negotiations += n.Bridge.CC.Negotiations()
			res.FallbackSegs += st.FallbackSegments + st.FallbackTxns
			res.DMAErrors += n.Bridge.EngUp.Stats().Errors
			res.BatchedTxns += st.BatchedTxns
			res.BatchFlushes += st.BatchFlushes
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AblationTable renders the ablation study.
func AblationTable(rows []AblationResult) *report.Table {
	t := &report.Table{
		Title:  "Ablations: DoCeph design choices",
		Header: []string{"variant", "size", "avg lat (s)", "IOPS", "host CPU", "negotiations", "fallbacks", "DMA errors", "batched txns", "flushes"},
	}
	for _, r := range rows {
		size := report.MB(r.SizeBytes)
		if r.SizeBytes < 1<<20 {
			size = report.KB(r.SizeBytes)
		}
		t.AddRow(r.Name, size, report.F3(r.AvgLatency.Seconds()), report.F2(r.IOPS),
			report.Pct(r.HostUtil), fmt.Sprint(r.Negotiations),
			fmt.Sprint(r.FallbackSegs), fmt.Sprint(r.DMAErrors),
			fmt.Sprint(r.BatchedTxns), fmt.Sprint(r.BatchFlushes))
	}
	t.AddNote("pipelining and MR caching are the paper's §3.3 optimizations; fallback rows exercise §4")
	return t
}

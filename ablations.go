package doceph

import (
	"fmt"

	"doceph/internal/report"
)

// AblationResult is one row of the design-choice ablation study: what each
// of DoCeph's §3.3/§4 mechanisms buys.
type AblationResult struct {
	Name         string
	SizeBytes    int64
	AvgLatency   Duration
	IOPS         float64
	HostUtil     float64
	Negotiations int64
	FallbackSegs int64
	DMAErrors    int64
}

// RunAblations measures DoCeph with individual mechanisms disabled or
// stressed: pipelining off, MR cache off, smaller staging buffers, extra
// DMA channels, and injected DMA failures exercising the fallback/cooldown
// machinery. Pipeline/MR/staging variants run at 16 MB (where segmentation
// matters); channel variants at 1 MB (where the single engine is the
// bottleneck, Figure 10's -30%).
func RunAblations(opts ExpOptions) ([]AblationResult, error) {
	opts = opts.withDefaults()

	type variant struct {
		name   string
		size   int64
		mut    func(*ClusterConfig)
		inject int64 // engine FailEvery
	}
	const big, small = int64(16 << 20), int64(1 << 20)
	variants := []variant{
		{name: "doceph (full design)", size: big},
		{name: "no pipelining", size: big, mut: func(c *ClusterConfig) {
			c.Bridge.Proxy.DisablePipeline = true
		}},
		{name: "no MR cache", size: big, mut: func(c *ClusterConfig) {
			c.Bridge.Proxy.DisableMRCache = true
		}},
		{name: "1MB staging buffers", size: big, mut: func(c *ClusterConfig) {
			c.DPU.StagingBufferBytes = 1 << 20
		}},
		{name: "512KB staging buffers", size: big, mut: func(c *ClusterConfig) {
			c.DPU.StagingBufferBytes = 512 << 10
		}},
		{name: "DMA failure every 200 transfers", size: big, inject: 200},
		{name: "1MB writes, 1 DMA channel", size: small},
		{name: "1MB writes, 2 DMA channels", size: small, mut: func(c *ClusterConfig) {
			c.Bridge.Engine.Channels = 2
		}},
		{name: "1MB writes, 4 DMA channels", size: small, mut: func(c *ClusterConfig) {
			c.Bridge.Engine.Channels = 4
		}},
		{name: "1MB writes, DPU compression (2:1)", size: small, mut: func(c *ClusterConfig) {
			c.Bridge.Proxy.EnableCompression = true
		}},
	}

	var out []AblationResult
	for _, v := range variants {
		cfg := ClusterConfig{Mode: DoCeph, Seed: opts.Seed}
		if v.mut != nil {
			v.mut(&cfg)
		}
		cl := NewCluster(cfg)
		if v.inject > 0 {
			for _, n := range cl.Nodes {
				n.Bridge.EngUp.FailEvery = v.inject
			}
		}
		bench, err := RunBench(cl, BenchConfig{
			Threads: opts.Threads, ObjectBytes: v.size,
			Duration: opts.Duration, Warmup: opts.Warmup,
		})
		if err != nil {
			cl.Shutdown()
			return nil, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		res := AblationResult{
			Name:       v.name,
			SizeBytes:  v.size,
			AvgLatency: bench.AvgLatency,
			IOPS:       bench.IOPS(),
			HostUtil:   cl.HostCPUMerged().SingleCoreUtilization(),
		}
		for _, n := range cl.Nodes {
			res.Negotiations += n.Bridge.CC.Negotiations()
			res.FallbackSegs += n.Bridge.Proxy.Stats().FallbackSegments +
				n.Bridge.Proxy.Stats().FallbackTxns
			res.DMAErrors += n.Bridge.EngUp.Stats().Errors
		}
		cl.Shutdown()
		out = append(out, res)
	}
	return out, nil
}

// AblationTable renders the ablation study.
func AblationTable(rows []AblationResult) *report.Table {
	t := &report.Table{
		Title:  "Ablations: DoCeph design choices",
		Header: []string{"variant", "size", "avg lat (s)", "IOPS", "host CPU", "negotiations", "fallbacks", "DMA errors"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, report.MB(r.SizeBytes), report.F3(r.AvgLatency.Seconds()), report.F2(r.IOPS),
			report.Pct(r.HostUtil), fmt.Sprint(r.Negotiations),
			fmt.Sprint(r.FallbackSegs), fmt.Sprint(r.DMAErrors))
	}
	t.AddNote("pipelining and MR caching are the paper's §3.3 optimizations; fallback rows exercise §4")
	return t
}

package doceph

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"doceph/internal/bluestore"
	"doceph/internal/cluster"
	"doceph/internal/messenger"
	"doceph/internal/radosbench"
	"doceph/internal/sim"
)

// The golden file pins the simulated headline metrics (throughput, latency
// distribution, host-CPU utilization, context switches, kernel event count)
// for one Baseline and one DoCeph run at a fixed seed. It was captured
// BEFORE the allocation-lean kernel / zero-copy data-plane rewrite; the
// test asserts every later kernel reproduces those numbers bit-identically.
// Regenerate only for an intentional model change:
//
//	go test -run TestGoldenDeterminism -update-golden .
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_sim.json from this run")

const goldenPath = "testdata/golden_sim.json"

// goldenMetrics holds only exactly-representable values: durations and
// counters are int64, float metrics are stored as IEEE-754 bit patterns so
// "bit-identical" is literal, not within-epsilon.
type goldenMetrics struct {
	Ops          int64  `json:"ops"`
	Bytes        int64  `json:"bytes"`
	AvgLatencyNs int64  `json:"avg_latency_ns"`
	MinLatencyNs int64  `json:"min_latency_ns"`
	MaxLatencyNs int64  `json:"max_latency_ns"`
	P50Ns        int64  `json:"p50_ns"`
	P99Ns        int64  `json:"p99_ns"`
	HostUtilBits uint64 `json:"host_util_bits"`
	HostUtil     string `json:"host_util"` // human-readable mirror of HostUtilBits
	MsgrSwitches int64  `json:"msgr_switches"`
	ObjSwitches  int64  `json:"obj_switches"`
	KernelEvents uint64 `json:"kernel_events"`
}

func runGoldenScenario(t *testing.T, mode cluster.Mode) goldenMetrics {
	t.Helper()
	m, cl := runGoldenScenarioOpt(t, mode, false)
	cl.Shutdown()
	return m
}

// runGoldenScenarioOpt runs the pinned scenario, optionally with tracing,
// and returns the headline metrics plus the cluster for extra inspection.
// The caller owns the cluster shutdown.
func runGoldenScenarioOpt(t *testing.T, mode cluster.Mode, traced bool) (goldenMetrics, *cluster.Cluster) {
	t.Helper()
	return runSeededScenario(t, mode, traced, 42, 3*sim.Second)
}

// runSeededScenario is the golden scenario parameterized by seed and window
// length, for the multi-seed determinism sweep.
func runSeededScenario(t *testing.T, mode cluster.Mode, traced bool,
	seed int64, dur sim.Duration) (goldenMetrics, *cluster.Cluster) {
	t.Helper()
	cl := cluster.New(cluster.Config{Mode: mode, Seed: seed, Trace: traced})
	res, err := radosbench.Run(cl.Env, cl.Client, radosbench.Config{
		Threads:     8,
		ObjectBytes: 1 << 20,
		Duration:    dur,
		Warmup:      sim.Second,
		OnWarmupEnd: cl.ResetHostStats,
	})
	if err != nil {
		cl.Shutdown()
		t.Fatalf("mode %v: %v", mode, err)
	}
	host := cl.HostCPUMerged()
	util := host.SingleCoreUtilization()
	return goldenMetrics{
		Ops:          res.Ops,
		Bytes:        res.Bytes,
		AvgLatencyNs: int64(res.AvgLatency),
		MinLatencyNs: int64(res.MinLatency),
		MaxLatencyNs: int64(res.MaxLatency),
		P50Ns:        int64(res.P50),
		P99Ns:        int64(res.P99),
		HostUtilBits: math.Float64bits(util),
		HostUtil:     strconvFloat(util),
		MsgrSwitches: host.SwitchesByCat[messenger.ThreadCat],
		ObjSwitches:  host.SwitchesByCat[bluestore.ThreadCat],
		KernelEvents: cl.Env.Events(),
	}, cl
}

func strconvFloat(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

// TestGoldenDeterminism is the regression gate for the simulation kernel:
// any scheduling, pooling or data-plane optimization must leave every
// simulated number — including the total event count — exactly unchanged.
func TestGoldenDeterminism(t *testing.T) {
	got := map[string]goldenMetrics{
		"baseline": runGoldenScenario(t, cluster.Baseline),
		"doceph":   runGoldenScenario(t, cluster.DoCeph),
	}

	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenMetrics
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("scenario %q in golden file but not produced", name)
			continue
		}
		if g != w {
			t.Errorf("scenario %q diverged from golden:\n got  %+v\n want %+v", name, g, w)
		}
	}
}

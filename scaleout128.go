package doceph

import (
	"encoding/json"
	"fmt"
	"time"

	"doceph/internal/cluster"
	"doceph/internal/perf"
	"doceph/internal/radosbench"
	"doceph/internal/report"
)

// ScaleOut128Options shapes the 128-OSD multi-rack experiment: the
// popularity ablation (uniform vs Zipf vs hotspot x balance-reads) plus a
// kernel worker-count sweep on the Zipf arm.
type ScaleOut128Options struct {
	// Pods x OSDsPerPod racks (defaults 16 x 8: the 128-OSD scenario).
	Pods       int
	OSDsPerPod int
	// Threads is the closed-loop client count per rack (default 2).
	Threads int
	// ObjectBytes is the op size (default 64 KiB).
	ObjectBytes int64
	// ReadPercent is the read share of every arm (default 70).
	ReadPercent int
	// Duration/Warmup bound the workload (defaults 1s / 500ms).
	Duration Duration
	Warmup   Duration
	Seed     int64
	// Workers are the kernel worker counts the Zipf arm is re-run at to
	// prove bit-identical results (default 1, 2, 4, 8). The ablation arms
	// run at Workers[0].
	Workers []int
}

func (o ScaleOut128Options) withDefaults() ScaleOut128Options {
	if o.Pods == 0 {
		o.Pods = 16
	}
	if o.OSDsPerPod == 0 {
		o.OSDsPerPod = 8
	}
	if o.Threads == 0 {
		o.Threads = 2
	}
	if o.ObjectBytes == 0 {
		o.ObjectBytes = 64 << 10
	}
	if o.ReadPercent == 0 {
		o.ReadPercent = 70
	}
	if o.Duration == 0 {
		o.Duration = Second
	}
	if o.Warmup == 0 {
		o.Warmup = 500 * Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 8}
	}
	return o
}

// ScaleOut128Row is one arm of the 128-OSD experiment: a workload shape,
// its simulated throughput, and the load-imbalance figures.
type ScaleOut128Row struct {
	Workload string
	Balance  bool
	Workers  int
	Ops      int64
	MBps     float64
	Imb      perf.Imbalance
	WallNs   int64
}

func (o ScaleOut128Options) config(kind radosbench.PopKind, balance bool) cluster.ScaleOutConfig {
	return cluster.ScaleOutConfig{
		Pods:             o.Pods,
		OSDsPerPod:       o.OSDsPerPod,
		Mode:             DoCeph,
		Seed:             o.Seed,
		Threads:          o.Threads,
		ObjectBytes:      o.ObjectBytes,
		ReadPercent:      o.ReadPercent,
		Duration:         o.Duration,
		Warmup:           o.Warmup,
		Popularity:       radosbench.Popularity{Kind: kind},
		BalanceReads:     balance,
		CollectImbalance: true,
	}
}

// RunScaleOut128 runs the 128-OSD multi-rack ablation — uniform vs Zipf vs
// hotspot popularity, balance-reads off vs on — and then re-runs the
// Zipf+balance arm at every requested kernel worker count, requiring the
// full result (throughput, imbalance arrays, queue-depth samples) to be
// byte-identical across counts. A drift is an error, not a table footnote.
func RunScaleOut128(o ScaleOut128Options) ([]ScaleOut128Row, error) {
	o = o.withDefaults()
	kinds := []radosbench.PopKind{radosbench.PopUniform, radosbench.PopZipf, radosbench.PopHotspot}
	var out []ScaleOut128Row
	run := func(kind radosbench.PopKind, balance bool, workers int) (ScaleOut128Row, []byte, error) {
		so := cluster.NewScaleOut(o.config(kind, balance))
		start := time.Now()
		res, err := so.Run(workers)
		wall := time.Since(start)
		so.Shutdown()
		if err != nil {
			return ScaleOut128Row{}, nil, fmt.Errorf("scaleout128 %s balance=%v workers=%d: %w",
				kind, balance, workers, err)
		}
		fp, err := json.Marshal(res)
		if err != nil {
			return ScaleOut128Row{}, nil, err
		}
		row := ScaleOut128Row{
			Workload: kind.String(),
			Balance:  balance,
			Workers:  workers,
			Ops:      res.TotalOps,
			MBps:     float64(res.TotalBytes) / 1e6 / o.Duration.Seconds(),
			Imb:      perf.ComputeImbalance(res),
			WallNs:   wall.Nanoseconds(),
		}
		return row, fp, nil
	}
	for _, kind := range kinds {
		for _, balance := range []bool{false, true} {
			row, _, err := run(kind, balance, o.Workers[0])
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	// Worker-count determinism sweep on the Zipf+balance arm: the full
	// result marshals to the same bytes at every count.
	var firstFP []byte
	for _, w := range o.Workers {
		row, fp, err := run(radosbench.PopZipf, true, w)
		if err != nil {
			return nil, err
		}
		if firstFP == nil {
			firstFP = fp
		} else if string(fp) != string(firstFP) {
			return nil, fmt.Errorf(
				"scaleout128 determinism violation: workers=%d result differs from workers=%d",
				w, o.Workers[0])
		}
		if w != o.Workers[0] {
			out = append(out, row)
		}
	}
	return out, nil
}

// ScaleOut128Table renders the 128-OSD ablation.
func ScaleOut128Table(rows []ScaleOut128Row) *report.Table {
	t := &report.Table{
		Title: "Extension: 128-OSD multi-rack CRUSH cluster, popularity x balance-reads",
		Header: []string{"workload", "balance", "workers", "ops", "sim MB/s",
			"osd max/mean", "pg max/mean", "qd p99:p50", "hot-read share", "balanced", "wall ms"},
	}
	for _, r := range rows {
		balance := "off"
		if r.Balance {
			balance = "on"
		}
		t.AddRow(r.Workload, balance, fmt.Sprint(r.Workers), fmt.Sprint(r.Ops),
			report.F2(r.MBps), report.F2(r.Imb.MaxMeanOSDShare), report.F2(r.Imb.MaxMeanPGShare),
			report.F2(r.Imb.QueueDepthP99P50), fmt.Sprintf("%.3f", r.Imb.HotReadShare),
			fmt.Sprintf("%.3f", r.Imb.BalancedReadShare),
			fmt.Sprintf("%.1f", float64(r.WallNs)/1e6))
	}
	t.AddNote("16 racks x 8 OSDs; catalog homed by rack-aware CRUSH (failure domain = rack); reads 70%%")
	t.AddNote("extra worker rows re-run the zipf+balance arm; full results are byte-identical across counts (enforced)")
	return t
}

// failover: robustness under two failure modes the paper's design must
// survive — a crashed OSD (heartbeat detection, monitor epoch bump, CRUSH
// re-placement) and injected DMA errors on the DPU/host path (segment-
// preserving RPC fallback with cooldown and probe-based recovery, §4).
package main

import (
	"fmt"
	"log"

	"doceph"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

func main() {
	cl := doceph.NewCluster(doceph.ClusterConfig{
		Mode:         doceph.DoCeph,
		StorageNodes: 3,
	})
	defer cl.Shutdown()

	done := false
	cl.Env.Spawn("operator", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("operator", "client"))
		say := func(format string, args ...interface{}) {
			fmt.Printf("[%7.3fs] %s\n", p.Now().Seconds(), fmt.Sprintf(format, args...))
		}

		write := func(obj string) {
			if err := cl.Client.Write(p, obj, wire.FromBytes(make([]byte, 1<<20))); err != nil {
				log.Fatalf("%s: %v", obj, err)
			}
		}

		say("cluster up: 3 storage nodes, epoch %d", cl.Client.Map().Epoch)
		write("before-failures")
		say("baseline write OK")

		// --- Failure 1: DMA errors on node0's DPU/host path.
		say("injecting DMA failures on node0 (every 3rd transfer)")
		cl.Nodes[0].Bridge.EngUp.FailEvery = 3
		for i := 0; i < 6; i++ {
			write(fmt.Sprintf("during-dma-errors-%d", i))
		}
		px := cl.Nodes[0].Bridge.Proxy
		say("writes survived: %d segments fell back to RPC, %d cooldowns, DMA healthy=%v",
			px.Stats().FallbackSegments+px.Stats().FallbackTxns,
			px.Stats().CooldownEntries, px.DMAHealthy())
		cl.Nodes[0].Bridge.EngUp.FailEvery = 0
		p.Wait(6 * sim.Second) // let the cooldown expire
		// Write until a placement lands on node0 so its proxy probes the
		// recovered DMA path.
		for i := 0; i < 12 && !px.DMAHealthy(); i++ {
			write(fmt.Sprintf("after-dma-recovery-%d", i))
		}
		say("post-cooldown writes OK, probes=%d, DMA healthy=%v",
			px.Stats().Probes, px.DMAHealthy())

		// --- Failure 2: whole OSD crash.
		say("crashing osd.2")
		cl.Nodes[2].OSD.Fail()
		p.Wait(12 * sim.Second) // heartbeat grace + map propagation
		say("monitor published epoch %d; osd.2 up=%v",
			cl.Client.Map().Epoch, cl.Client.Map().IsUp(2))
		for i := 0; i < 4; i++ {
			obj := fmt.Sprintf("after-osd-crash-%d", i)
			write(obj)
			pg := cl.Client.Map().PGForObject(obj)
			say("  %s -> PG %d acting %v (avoids the dead OSD)", obj, pg,
				cl.Client.Map().ActingSet(pg))
		}

		// --- Recovery: restart the daemon and bring it back in.
		say("restarting osd.2 and marking it up")
		cl.Nodes[2].OSD.Recover()
		cl.Mon.MarkUp(2)
		p.Wait(30 * sim.Second) // map propagation + backfill
		var recovered, pushes int64
		for _, n := range cl.Nodes {
			recovered += n.OSD.Stats().ObjectsRecovered
			pushes += n.OSD.Stats().PushesServed
		}
		say("epoch %d; osd.2 up=%v; backfill pushed %d objects (%d served)",
			cl.Client.Map().Epoch, cl.Client.Map().IsUp(2), recovered, pushes)
		write("after-rejoin")
		say("post-rejoin write OK")

		// The manager has been polling all along.
		p.Wait(6 * sim.Second)
		fmt.Print("\nMGR cluster report:\n" + cl.Mgr.Report() + "\n")
		done = true
	})
	if err := cl.Env.RunUntil(sim.Time(5 * 60 * sim.Second)); err != nil {
		log.Fatal(err)
	}
	if !done {
		log.Fatal("scenario did not complete")
	}
	fmt.Println("\nall writes remained durable through both failure modes.")
}

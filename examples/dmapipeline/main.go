// dmapipeline: a close-up of the paper's §3.3 mechanism. One 16 MiB write
// is pushed through the DPU->host data plane with pipelining on and off,
// printing the per-segment DMA timeline so the overlap of staging with
// in-flight transfers (Figure 4) is visible, plus the effect of the memory
// region cache on CommChannel negotiations.
package main

import (
	"fmt"
	"log"

	"doceph/internal/bluestore"
	"doceph/internal/core"
	"doceph/internal/dpu"
	"doceph/internal/objstore"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

func runOnce(disablePipeline, disableMRCache bool) {
	env := sim.NewEnv(7)
	hostCPU := sim.NewCPU(env, "host", 48, 3.6, 2500)
	disk := sim.NewDisk(env, "ssd", 520e6, 550e6, 30*sim.Microsecond)
	store := bluestore.New(env, "bs", hostCPU, disk, bluestore.Config{})
	dev := dpu.New(env, "bf3", dpu.Config{})
	cfg := core.BridgeConfig{}
	cfg.Proxy.DisablePipeline = disablePipeline
	cfg.Proxy.DisableMRCache = disableMRCache
	bridge := core.NewBridge(env, dev, hostCPU, store, cfg)

	label := "pipelining ON, MR cache ON"
	if disablePipeline {
		label = "pipelining OFF"
	}
	if disableMRCache {
		label = "MR cache OFF (renegotiate per segment)"
	}

	var elapsed sim.Duration
	env.Spawn("writer", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("writer", "tp_osd_tp"))
		payload := wire.FromBytes(make([]byte, 16<<20))
		txn := (&objstore.Transaction{}).MkColl("pg.0").Write("pg.0", "big", 0, payload)
		start := p.Now()
		res := bridge.Proxy.QueueTransaction(p, txn)
		res.Done.Wait(p)
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		elapsed = p.Now().Sub(start)
	})
	if err := env.RunUntil(sim.Time(30 * sim.Second)); err != nil {
		log.Fatal(err)
	}
	env.Shutdown()

	st := bridge.EngUp.Stats()
	b := bridge.Proxy.BreakdownSnapshot()
	hw, dma, wait := b.Avg()
	fmt.Printf("== %s ==\n", label)
	fmt.Printf("  16 MiB write committed in %.2f ms over %d DMA segments\n",
		elapsed.Seconds()*1e3, st.Transfers)
	fmt.Printf("  DMA copy %.2f ms | DMA wait %.2f ms | host write %.2f ms\n",
		dma.Seconds()*1e3, wait.Seconds()*1e3, hw.Seconds()*1e3)
	fmt.Printf("  CommChannel negotiations: %d\n\n", bridge.CC.Negotiations())
}

func main() {
	fmt.Println("One 16 MiB write across the 2 MB DMA segment limit:")
	fmt.Println()
	runOnce(false, false)
	runOnce(true, false)
	runOnce(false, true)
	fmt.Println("Pipelining overlaps staging with in-flight segments; the MR cache")
	fmt.Println("replaces per-segment negotiation round trips with reuse (paper §3.3).")
}

// objectgateway: the third of the paper's §2.1 Ceph interfaces (RGW-style
// object storage) running over the DoCeph cluster. Buckets keep their
// listings as replicated omap entries on index objects — the metadata path
// rides the proxy's RPC/omap machinery while object bodies take the DMA
// data plane.
package main

import (
	"fmt"
	"log"

	"doceph"
	"doceph/internal/gateway"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

func main() {
	cl := doceph.NewCluster(doceph.ClusterConfig{Mode: doceph.DoCeph})
	defer cl.Shutdown()
	gw := gateway.New(cl.Client)

	done := false
	cl.Env.Spawn("s3-user", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("s3-user", "client"))

		if err := gw.CreateBucket(p, "ml-datasets"); err != nil {
			log.Fatal(err)
		}
		fmt.Println("created bucket ml-datasets")

		uploads := map[string]int{
			"train/shard-000.tfrecord": 4 << 20,
			"train/shard-001.tfrecord": 4 << 20,
			"val/shard-000.tfrecord":   1 << 20,
			"manifest.json":            2 << 10,
		}
		for key, size := range uploads {
			body := make([]byte, size)
			for i := range body {
				body[i] = byte(len(key) + i)
			}
			if err := gw.Put(p, "ml-datasets", key, wire.FromBytes(body)); err != nil {
				log.Fatalf("put %s: %v", key, err)
			}
			fmt.Printf("PUT %s (%d bytes)\n", key, size)
		}

		keys, err := gw.List(p, "ml-datasets")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nLIST ml-datasets:")
		for _, k := range keys {
			size, etag, err := gw.Head(p, "ml-datasets", k)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-26s %8d bytes  etag %08x\n", k, size, etag)
		}

		body, err := gw.Get(p, "ml-datasets", "manifest.json")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nGET manifest.json -> %d bytes, intact\n", body.Length())
		done = true
	})
	if err := cl.Env.RunUntil(sim.Time(2 * 60 * sim.Second)); err != nil {
		log.Fatal(err)
	}
	if !done {
		log.Fatal("example did not complete")
	}

	var dmaTxns, controlCalls int64
	for _, n := range cl.Nodes {
		dmaTxns += n.Bridge.Proxy.Stats().DataPlaneTxns
		controlCalls += n.Bridge.Proxy.Stats().ControlCalls
	}
	fmt.Printf("\nplane split on the DPU proxy: %d data-plane txns (bodies+indexes), %d control calls\n",
		dmaTxns, controlCalls)
}

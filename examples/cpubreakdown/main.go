// cpubreakdown: the paper's §5.2 motivation experiment as a capacity-
// planning scenario. A storage operator wants to know where the host CPU
// goes under a 4 MB write-heavy tenant: run the identical workload against
// the Baseline and DoCeph deployments and compare the per-thread-category
// host CPU bill.
package main

import (
	"fmt"
	"log"
	"sort"

	"doceph"
	"doceph/internal/report"
)

func main() {
	opts := doceph.QuickOptions()

	type row struct {
		mode doceph.Mode
		name string
	}
	for _, r := range []row{{doceph.Baseline, "Baseline (Ceph on host)"},
		{doceph.DoCeph, "DoCeph (OSD on DPU)"}} {
		cl := doceph.NewCluster(doceph.ClusterConfig{Mode: r.mode})
		res, err := doceph.RunBench(cl, doceph.BenchConfig{
			Threads: opts.Threads, ObjectBytes: 4 << 20,
			Duration: opts.Duration, Warmup: opts.Warmup,
		})
		if err != nil {
			log.Fatal(err)
		}
		m := cl.HostCPUMerged()
		fmt.Printf("== %s ==\n", r.name)
		fmt.Printf("throughput: %.0f MB/s, avg latency %.3fs\n",
			res.ThroughputBps()/1e6, res.AvgLatency.Seconds())
		fmt.Printf("host CPU (single-core norm): %s\n", report.Pct(m.SingleCoreUtilization()))
		cats := m.Categories()
		sort.Slice(cats, func(i, j int) bool {
			return m.BusyByCat[cats[i]] > m.BusyByCat[cats[j]]
		})
		for _, cat := range cats {
			fmt.Printf("  %-14s %8s  %s\n", cat, report.Pct(m.ShareOf(cat)),
				report.Bar(m.BusyByCat[cat].Seconds(), m.TotalBusy.Seconds(), 40))
		}
		if r.mode == doceph.DoCeph {
			d := cl.DPUCPUMerged()
			fmt.Printf("DPU ARM CPU (single-core norm): %s  <- offloaded messenger lives here\n",
				report.Pct(d.SingleCoreUtilization()))
		}
		fmt.Println()
		cl.Shutdown()
	}
}

// Quickstart: assemble a DoCeph cluster (OSDs on the DPU, BlueStore on the
// host), store and read back an object through the full client -> messenger
// -> DPU-OSD -> DMA -> host-BlueStore path, and print what each layer saw.
package main

import (
	"fmt"
	"log"

	"doceph"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

func main() {
	cl := doceph.NewCluster(doceph.ClusterConfig{Mode: doceph.DoCeph})
	defer cl.Shutdown()

	done := false
	cl.Env.Spawn("quickstart", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("quickstart", "client"))

		payload := make([]byte, 3<<20) // 3 MiB: crosses the 2 MB DMA limit
		for i := range payload {
			payload[i] = byte(i % 251)
		}
		data := wire.FromBytes(payload)

		fmt.Printf("[%.4fs] writing 3 MiB object...\n", p.Now().Seconds())
		if err := cl.Client.Write(p, "hello-object", data); err != nil {
			log.Fatalf("write: %v", err)
		}
		fmt.Printf("[%.4fs] write acknowledged (durable on %d replicas)\n",
			p.Now().Seconds(), cl.Client.Map().Replicas)

		got, err := cl.Client.Read(p, "hello-object", 0, 0)
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		fmt.Printf("[%.4fs] read back %d bytes, CRC match: %v\n",
			p.Now().Seconds(), got.Length(), got.CRC32C() == data.CRC32C())

		size, version, err := cl.Client.Stat(p, "hello-object")
		if err != nil {
			log.Fatalf("stat: %v", err)
		}
		fmt.Printf("[%.4fs] stat: size=%d version=%d\n", p.Now().Seconds(), size, version)
		done = true
	})
	if err := cl.Env.RunUntil(sim.Time(30 * sim.Second)); err != nil || !done {
		log.Fatalf("simulation failed: %v (done=%v)", err, done)
	}

	fmt.Println("\nwhat each layer saw:")
	for i, n := range cl.Nodes {
		eng := n.Bridge.EngUp.Stats()
		fmt.Printf("  node%d: DMA transfers=%d (%.1f MiB), host commits=%d, control RPCs=%d\n",
			i, eng.Transfers, float64(eng.Bytes)/(1<<20),
			n.Bridge.Host.Stats().TxnsCommitted, n.Bridge.Host.Stats().ControlRequests)
	}
	host := cl.HostCPUMerged()
	dpuSide := cl.DPUCPUMerged()
	fmt.Printf("  host CPU busy: %.2f core-ms | DPU ARM busy: %.2f core-ms\n",
		host.TotalBusy.Seconds()*1e3, dpuSide.TotalBusy.Seconds()*1e3)
	fmt.Println("  (the messenger cycles live on the DPU, not the host — the paper's point)")
}

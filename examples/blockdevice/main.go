// blockdevice: the paper's §2.1 names RBD (block storage) as one of Ceph's
// three interfaces. This example runs an RBD-style striped block device on
// top of the DoCeph cluster: a 64 MiB volume striped over 4 MiB objects
// with a client-side write-through page cache (internal/rbd), written with
// a database-like pattern (a large sequential load plus small random page
// updates), read back and verified — all through the DPU-offloaded data
// path.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"doceph"
	"doceph/internal/rbd"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

func main() {
	cl := doceph.NewCluster(doceph.ClusterConfig{Mode: doceph.DoCeph})
	defer cl.Shutdown()

	done := false
	cl.Env.Spawn("blockdevice", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("blockdevice", "client"))

		const volSize = 64 << 20
		dev, err := rbd.Create(p, cl.Client, "db-volume", volSize, rbd.DeviceConfig{
			ObjectBytes: 4 << 20,
			Cache:       rbd.CacheConfig{Enable: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		img := dev.Image()
		fmt.Printf("created image %q: %d MiB over %d objects of %d MiB\n",
			dev.Name(), dev.Size()>>20, img.Objects(), dev.ObjectBytes()>>20)

		// Phase 1: bulk sequential load (a restore or table import).
		bulk := make([]byte, 16<<20)
		for i := range bulk {
			bulk[i] = byte(i * 131)
		}
		start := p.Now()
		if err := dev.WriteAt(p, wire.FromBytes(bulk), 0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bulk load: 16 MiB in %.1f ms\n", p.Now().Sub(start).Seconds()*1e3)

		// Phase 2: random 8 KiB page updates (OLTP-ish).
		r := rand.New(rand.NewSource(1))
		start = p.Now()
		const pages = 64
		for i := 0; i < pages; i++ {
			page := make([]byte, 8<<10)
			for j := range page {
				page[j] = byte(i + j)
			}
			// Update pages above the bulk region so phase 3 can verify it.
			off := int64(16<<20+r.Intn(volSize-16<<20-len(page))) &^ 8191
			if err := dev.WriteAt(p, wire.FromBytes(page), off); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("page updates: %d x 8 KiB in %.1f ms\n",
			pages, p.Now().Sub(start).Seconds()*1e3)

		// Phase 3: verify a cross-object read, then re-read it: the
		// write-through cache absorbs the second pass client-side.
		got, err := dev.ReadAt(p, 3<<20, 2<<20)
		if err != nil {
			log.Fatal(err)
		}
		want := wire.FromBytes(bulk[3<<20 : 5<<20])
		fmt.Printf("cross-object readback: %d bytes, intact=%v\n",
			got.Length(), got.CRC32C() == want.CRC32C())
		again, err := dev.ReadAt(p, 3<<20, 2<<20)
		if err != nil {
			log.Fatal(err)
		}
		st := dev.Stats()
		fmt.Printf("cached re-read: intact=%v, cache hits=%d misses=%d (%.1f MiB cached)\n",
			again.CRC32C() == want.CRC32C(), st.CacheHits, st.CacheMisses,
			float64(st.CachedBytes)/(1<<20))

		// Where did the stripes land?
		byOSD := map[int32]int{}
		for i := int64(0); i < img.Objects(); i++ {
			pg := cl.Client.Map().PGForObject(img.ObjectName(i))
			byOSD[cl.Client.Map().Primary(pg)]++
		}
		fmt.Printf("stripe primaries by OSD: %v\n", byOSD)
		done = true
	})
	if err := cl.Env.RunUntil(sim.Time(2 * 60 * sim.Second)); err != nil {
		log.Fatal(err)
	}
	if !done {
		log.Fatal("example did not complete")
	}

	var dma int64
	for _, n := range cl.Nodes {
		dma += n.Bridge.EngUp.Stats().Bytes
	}
	fmt.Printf("total bytes through the DPU->host DMA path: %.1f MiB\n", float64(dma)/(1<<20))
}

// chaos: runs the deterministic fault-injection experiment — the same
// seeded fault plan (packet loss, latency spikes, an OSD crash/restart,
// slow and failing disk I/O, replica bit-rot, DPU DMA errors) against the
// Baseline and DoCeph deployments — and reports how the data plane rode it
// out: retries, session resets, scrub repairs, throughput dip and recovery,
// and end-to-end payload integrity.
//
// The run is fully reproducible: the same seed and plan produce the same
// result, byte for byte. Change -seed to explore a different fault history.
package main

import (
	"flag"
	"fmt"
	"log"

	"doceph"
)

func main() {
	seconds := flag.Int("seconds", 60, "workload length in simulated seconds")
	threads := flag.Int("threads", 8, "closed-loop client workers")
	seed := flag.Int64("seed", 42, "seed for the clusters and every fault draw")
	flag.Parse()

	opts := doceph.ChaosOptions{
		Duration: doceph.Duration(*seconds) * doceph.Second,
		Threads:  *threads,
		Seed:     *seed,
	}
	plan := doceph.DefaultChaosPlan(opts.Duration)
	fmt.Printf("fault plan %q (%d events), %ds workload, seed %d\n",
		plan.Name, len(plan.Events), *seconds, *seed)
	for _, ev := range plan.Events {
		fmt.Printf("  t=%5.1fs %-12s", ev.At.Seconds(), ev.Kind)
		if ev.Duration > 0 {
			fmt.Printf(" for %4.1fs", ev.Duration.Seconds())
		}
		fmt.Println()
	}

	r, err := doceph.RunChaos(opts, &plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(doceph.ChaosTable(r))

	for _, m := range []doceph.ChaosModeResult{r.Baseline, r.DoCeph} {
		verdict := "clean"
		if m.IntegrityOK != m.IntegrityChecked || m.Errors > 0 {
			verdict = fmt.Sprintf("%d errors, %d/%d reads verified",
				m.Errors, m.IntegrityOK, m.IntegrityChecked)
		}
		fmt.Printf("%-8s: %d ops, integrity %s; worst dip %.0f%% of clean throughput, recovered in %.0fs\n",
			m.Mode, m.Ops, verdict, m.DipPct, m.RecoverySeconds)
	}
}

// dashboard: an operator's view of the cluster. A mixed read/write workload
// runs continuously while the MGR polls the daemons; every few seconds the
// example prints the health grade and key rates — then an OSD dies mid-run
// and the dashboard shows detection (HEALTH_WARN, degraded PGs), and after a
// rejoin, the recovery back to HEALTH_OK.
package main

import (
	"fmt"
	"log"

	"doceph"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

func main() {
	cfg := doceph.ClusterConfig{Mode: doceph.DoCeph, StorageNodes: 3}
	cfg.Client.OpTimeout = 5 * doceph.Second // fail over quickly for the demo
	cl := doceph.NewCluster(cfg)
	defer cl.Shutdown()

	// Background workload: four writers looping forever.
	for w := 0; w < 4; w++ {
		id := w
		cl.Env.SpawnDaemon(fmt.Sprintf("writer-%d", id), func(p *sim.Proc) {
			p.SetThread(sim.NewThread("writer", "client"))
			for i := 0; ; i++ {
				obj := fmt.Sprintf("load-%d-%d", id, i)
				if err := cl.Client.Write(p, obj, wire.FromBytes(make([]byte, 512<<10))); err != nil {
					// During failover a write may retry internally; surface
					// only hard failures.
					fmt.Printf("           writer %d: %v\n", id, err)
				}
				p.Wait(200 * sim.Millisecond)
			}
		})
	}

	done := false
	cl.Env.Spawn("operator", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("operator", "client"))
		show := func() {
			h := cl.Mgr.AssessHealth(cl.Mon.Map())
			rate := func(src string) string {
				if cl.Mgr.Stale(src, p.Now(), 12*sim.Second) {
					return "stale"
				}
				return fmt.Sprintf("%.1f", cl.Mgr.Rate(src, "client_writes"))
			}
			fmt.Printf("[%6.1fs] %-42s writes/s osd.0=%-6s osd.1=%-6s osd.2=%-6s\n",
				p.Now().Seconds(), h.String(), rate("osd.0"), rate("osd.1"), rate("osd.2"))
		}
		for i := 0; i < 3; i++ {
			p.Wait(6 * sim.Second)
			show()
		}
		fmt.Println("           !! killing osd.1")
		cl.Nodes[1].OSD.Fail()
		for i := 0; i < 3; i++ {
			p.Wait(6 * sim.Second)
			show()
		}
		fmt.Println("           !! restarting osd.1")
		cl.Nodes[1].OSD.Recover()
		cl.Mon.MarkUp(1)
		for i := 0; i < 4; i++ {
			p.Wait(6 * sim.Second)
			show()
		}
		fmt.Print("\nfinal MGR report:\n" + cl.Mgr.Report())
		done = true
	})

	if err := cl.Env.RunUntil(sim.Time(3 * 60 * sim.Second)); err != nil {
		log.Fatal(err)
	}
	if !done {
		log.Fatal("scenario did not complete")
	}
}

package doceph

import (
	"fmt"
	"math"

	"doceph/internal/report"
)

// StabilityResult captures the abstract's "sustaining stable throughput"
// claim: per-second throughput series for both deployments under the same
// workload, with dispersion statistics.
type StabilityResult struct {
	SizeBytes int64
	Baseline  StabilitySeries
	DoCeph    StabilitySeries
}

// StabilitySeries is one deployment's per-second behaviour.
type StabilitySeries struct {
	MBps      []float64
	MeanMBps  float64
	StddevPct float64 // coefficient of variation, percent
}

// RunStability runs the 4 MB write workload on both deployments and
// collects rados bench's per-second samples.
func RunStability(opts ExpOptions, size int64) (StabilityResult, error) {
	opts = opts.withDefaults()
	if size == 0 {
		size = 4 << 20
	}
	out := StabilityResult{SizeBytes: size}
	for _, m := range []struct {
		mode Mode
		dst  *StabilitySeries
	}{{Baseline, &out.Baseline}, {DoCeph, &out.DoCeph}} {
		cl := NewCluster(ClusterConfig{Mode: m.mode, Seed: opts.Seed})
		res, err := RunBench(cl, BenchConfig{
			Threads: opts.Threads, ObjectBytes: size,
			Duration: opts.Duration, Warmup: opts.Warmup,
		})
		cl.Shutdown()
		if err != nil {
			return out, fmt.Errorf("stability %v: %w", m.mode, err)
		}
		var sum, sq float64
		for _, s := range res.PerSecond {
			v := float64(s.Bytes) / 1e6
			m.dst.MBps = append(m.dst.MBps, v)
			sum += v
		}
		n := float64(len(m.dst.MBps))
		if n > 0 {
			m.dst.MeanMBps = sum / n
			for _, v := range m.dst.MBps {
				d := v - m.dst.MeanMBps
				sq += d * d
			}
			if n > 1 && m.dst.MeanMBps > 0 {
				m.dst.StddevPct = math.Sqrt(sq/(n-1)) / m.dst.MeanMBps * 100
			}
		}
	}
	return out, nil
}

// StabilityTable renders the per-second series side by side with ASCII
// bars (the paper's "stable throughput" abstract claim, made visible).
func StabilityTable(r StabilityResult) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Stability: per-second throughput, %s writes (MB/s)",
			report.MB(r.SizeBytes)),
		Header: []string{"second", "Baseline", "", "DoCeph", ""},
	}
	max := 0.0
	for _, v := range append(append([]float64{}, r.Baseline.MBps...), r.DoCeph.MBps...) {
		if v > max {
			max = v
		}
	}
	n := len(r.Baseline.MBps)
	if len(r.DoCeph.MBps) < n {
		n = len(r.DoCeph.MBps)
	}
	for i := 0; i < n; i++ {
		t.AddRow(fmt.Sprint(i),
			report.F2(r.Baseline.MBps[i]), report.Bar(r.Baseline.MBps[i], max, 24),
			report.F2(r.DoCeph.MBps[i]), report.Bar(r.DoCeph.MBps[i], max, 24))
	}
	t.AddNote("baseline mean %.1f MB/s (cv %.1f%%); doceph mean %.1f MB/s (cv %.1f%%)",
		r.Baseline.MeanMBps, r.Baseline.StddevPct, r.DoCeph.MeanMBps, r.DoCeph.StddevPct)
	t.AddNote("abstract claim: DoCeph cuts host CPU \"while sustaining stable throughput\"")
	return t
}

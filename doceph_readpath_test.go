package doceph

import (
	"bytes"
	"fmt"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/radosbench"
	"doceph/internal/sim"
	"doceph/internal/trace"
)

// The metamorphic property of the read-path knobs: replica-read balancing
// and the DPU-side read cache are pure dispatch/transport optimizations.
// For a fixed mixed workload they may change WHERE a read is served
// (secondary OSD, DPU cache) but never WHAT any op observes — every read
// byte-identical to the written payload, every stored object intact, the
// ghost-read error unchanged, and the trace still structurally sound.

type readPathOutcome struct {
	ops      int64
	readOps  int64
	objCRC   map[string]uint32
	objLen   map[string]int
	ghostErr string
	// What the knobs MAY change — kept for the per-arm liveness checks.
	balanced    int64
	cacheHits   int64
	cacheMisses int64
}

const (
	rpThreads = 4
	rpOps     = 6
	rpReadPct = 70
)

// rpIsRead mirrors radosbench's fixed-work read/write split so the test
// can enumerate exactly which objects the workload wrote.
func rpIsRead(worker, i int) bool {
	return (worker*7919+i*104729)%100 < rpReadPct
}

func runReadPathArm(t *testing.T, mode cluster.Mode, size int64, balance, cache bool) readPathOutcome {
	t.Helper()
	cfg := cluster.Config{Mode: mode, Seed: 42, Trace: true}
	cfg.Client.BalanceReads = balance
	cfg.Bridge.ReadCache.Enable = cache
	cl := cluster.New(cfg)
	defer cl.Shutdown()
	res, err := radosbench.Run(cl.Env, cl.Client, radosbench.Config{
		Threads:      rpThreads,
		ObjectBytes:  size,
		OpsPerThread: rpOps,
		Op:           radosbench.Mixed,
		ReadPercent:  rpReadPct,
	})
	if err != nil {
		t.Fatalf("mode %v size %d balance %v cache %v: %v", mode, size, balance, cache, err)
	}
	out := readPathOutcome{
		ops:     res.Ops,
		readOps: res.ReadStats.Ops,
		objCRC:  map[string]uint32{},
		objLen:  map[string]int{},
	}
	want := radosbench.Payload(size)
	readback := false
	cl.Env.Spawn("readpath-readback", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("readpath-readback", "client"))
		check := func(obj string) {
			bl, err := cl.Client.Read(p, obj, 0, 0)
			if err != nil {
				t.Errorf("readback %s: %v", obj, err)
				return
			}
			// Byte-identical, not just checksum-identical.
			if !bytes.Equal(bl.Bytes(), want.Bytes()) {
				t.Errorf("readback %s: content differs from submitted payload", obj)
			}
			out.objCRC[obj] = bl.CRC32C()
			out.objLen[obj] = bl.Length()
		}
		for i := 0; i < rpThreads*4; i++ {
			check(fmt.Sprintf("benchmark_data_prepop_%d", i))
		}
		for w := 0; w < rpThreads; w++ {
			for i := 0; i < rpOps; i++ {
				if !rpIsRead(w, i) {
					check(fmt.Sprintf("benchmark_data_w%d_%d", w, i))
				}
			}
		}
		if _, err := cl.Client.Read(p, "never_written", 0, 0); err != nil {
			out.ghostErr = err.Error()
		}
		readback = true
	})
	if err := cl.Env.RunUntil(cl.Env.Now().Add(60 * sim.Second)); err != nil || !readback {
		t.Fatalf("readback did not finish: err=%v", err)
	}

	spans := cl.Tracer.Spans()
	if err := trace.CheckInvariants(spans); err != nil {
		t.Errorf("mode %v size %d balance %v cache %v: trace invariants: %v",
			mode, size, balance, cache, err)
	}
	busy := map[string]Duration{cl.ClientCPU.Name(): cl.ClientCPU.Stats().TotalBusy}
	for _, n := range cl.Nodes {
		busy[n.HostCPU.Name()] = n.HostCPU.Stats().TotalBusy
		if n.DPU != nil {
			busy[n.DPU.CPU.Name()] = n.DPU.CPU.Stats().TotalBusy
		}
	}
	if err := trace.CheckCPUConservation(spans, busy); err != nil {
		t.Errorf("mode %v size %d balance %v cache %v: CPU conservation: %v",
			mode, size, balance, cache, err)
	}
	out.balanced = cl.Client.Stats().BalancedReads
	for _, n := range cl.Nodes {
		if n.Bridge != nil {
			st := n.Bridge.Proxy.Stats()
			out.cacheHits += st.ReadCacheHits
			out.cacheMisses += st.ReadCacheMisses
		}
	}
	return out
}

func assertSameSemantics(t *testing.T, base, arm readPathOutcome, name string) {
	t.Helper()
	if base.ops != arm.ops || base.readOps != arm.readOps {
		t.Errorf("%s: op counts changed: %d/%d vs %d/%d",
			name, base.ops, base.readOps, arm.ops, arm.readOps)
	}
	if base.ghostErr == "" || base.ghostErr != arm.ghostErr {
		t.Errorf("%s: ghost-read error changed: %q vs %q", name, base.ghostErr, arm.ghostErr)
	}
	if len(base.objCRC) != len(arm.objCRC) {
		t.Fatalf("%s: object sets differ: %d vs %d", name, len(base.objCRC), len(arm.objCRC))
	}
	for obj, crc := range base.objCRC {
		if arm.objCRC[obj] != crc {
			t.Errorf("%s: %s stored bytes changed: %08x vs %08x", name, obj, crc, arm.objCRC[obj])
		}
		if base.objLen[obj] != arm.objLen[obj] {
			t.Errorf("%s: %s length changed: %d vs %d", name, obj, base.objLen[obj], arm.objLen[obj])
		}
	}
}

func TestMetamorphicReadPathKnobsPreserveSemantics(t *testing.T) {
	sizes := []int64{4 << 10, 64 << 10, 1 << 20, 4 << 20}
	for _, mode := range []cluster.Mode{cluster.Baseline, cluster.DoCeph} {
		for _, size := range sizes {
			mode, size := mode, size
			t.Run(fmt.Sprintf("%v_%dKB", mode, size>>10), func(t *testing.T) {
				t.Parallel()
				base := runReadPathArm(t, mode, size, false, false)
				if base.balanced != 0 || base.cacheHits+base.cacheMisses != 0 {
					t.Errorf("knob counters nonzero with knobs off: %+v", base)
				}
				if base.readOps == 0 || base.ops != int64(rpThreads*rpOps) {
					t.Fatalf("workload shape wrong: %+v", base)
				}

				bal := runReadPathArm(t, mode, size, true, false)
				assertSameSemantics(t, base, bal, "balance")
				if bal.balanced == 0 {
					t.Error("balanced arm never dispatched to a secondary")
				}

				if mode == cluster.DoCeph {
					cch := runReadPathArm(t, mode, size, false, true)
					assertSameSemantics(t, base, cch, "cache")
					if cch.cacheHits == 0 {
						t.Errorf("cache arm never hit: %+v", cch)
					}
					both := runReadPathArm(t, mode, size, true, true)
					assertSameSemantics(t, base, both, "balance+cache")
					if both.balanced == 0 || both.cacheHits == 0 {
						t.Errorf("combined arm knobs not live: %+v", both)
					}
				}
			})
		}
	}
}

// TestMultiSeedDeterminismMixedReadPath is the run-twice gate over the new
// read-path machinery all at once: a 70/30 mixed workload at queue depth 2
// with replica-read balancing and the DPU read cache enabled. Every
// simulated number and the byte-exact trace must reproduce across reruns
// for every seed.
func TestMultiSeedDeterminismMixedReadPath(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 42}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := func() (int64, int64, int64, uint64, string) {
				cfg := cluster.Config{Mode: cluster.DoCeph, Seed: seed, Trace: true}
				cfg.Client.BalanceReads = true
				cfg.Bridge.ReadCache.Enable = true
				cl := cluster.New(cfg)
				defer cl.Shutdown()
				res, err := RunBench(cl, BenchConfig{
					Threads: 8, ObjectBytes: 64 << 10,
					Duration: sim.Second, Warmup: 200 * sim.Millisecond,
					Op: MixedWorkload, ReadPercent: 70, QueueDepth: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.ReadStats.Ops == 0 || res.WriteStats.Ops == 0 {
					t.Fatalf("mix collapsed: %+v", res)
				}
				spans := cl.Tracer.Spans()
				if err := trace.CheckInvariants(spans); err != nil {
					t.Errorf("trace invariants: %v", err)
				}
				var hits int64
				for _, n := range cl.Nodes {
					hits += n.Bridge.Proxy.Stats().ReadCacheHits
				}
				if hits == 0 {
					t.Error("read cache never hit")
				}
				if cl.Client.Stats().BalancedReads == 0 {
					t.Error("no balanced reads dispatched")
				}
				return res.Ops, res.ReadStats.Ops, int64(res.AvgLatency), cl.Env.Events(), chromeHash(spans)
			}
			o1, r1, l1, e1, h1 := run()
			o2, r2, l2, e2, h2 := run()
			if o1 != o2 || r1 != r2 || l1 != l2 || e1 != e2 || h1 != h2 {
				t.Errorf("mixed run not deterministic: ops %d/%d reads %d/%d lat %d/%d events %d/%d trace %s/%s",
					o1, o2, r1, r2, l1, l2, e1, e2, h1, h2)
			}
		})
	}
}

// TestMultiSeedDeterminismBlockDevice: the striped block device cell (the
// same one the -exp readpath experiment runs) reproduces bit-identically
// across reruns for every seed, with the client cache absorbing the warm
// pass.
func TestMultiSeedDeterminismBlockDevice(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 42}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := func() BlockDeviceResult {
				res, err := runBlockDeviceCell(DoCeph, true, seed)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Intact {
					t.Error("block device readback corrupt")
				}
				if res.CacheHits == 0 {
					t.Error("client page cache never hit")
				}
				return res
			}
			a, b := run(), run()
			if a != b {
				t.Errorf("block device run not deterministic:\n 1: %+v\n 2: %+v", a, b)
			}
		})
	}
}

# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: all build test test-race race chaos-smoke selfheal-smoke parallel-kernel-smoke readpath-smoke scaleout128-smoke streaming-smoke bench bench-smoke cover microbench results quick examples vet fmt trace

all: build vet test test-race chaos-smoke bench-smoke cover

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -l . && test -z "$$(gofmt -l .)"

test:
	go test ./...

# The simulation is single-goroutine per cluster by design; the race run
# guards the few places real goroutines meet (env driver, queues).
test-race:
	go test -race ./...

race: test-race

# A short chaos run: full default fault plan against both deployments,
# integrity-checked. Exercises the fault-injection path end to end.
chaos-smoke:
	go run ./cmd/docephbench -exp chaos -seconds 20 -threads 4

# Self-healing path under the race detector: OSD crash + DPU fault through
# the circuit breaker, degraded writes and recovery QoS, plus the ablation.
# 30 s is the experiment floor (the crash window must outlast the 5 s
# heartbeat grace), so this is the shortest honest run.
selfheal-smoke:
	go run -race ./cmd/docephbench -exp selfheal -seconds 30 -threads 4

# The partitioned parallel kernel under the race detector: the 32-OSD
# multi-rack scale-out at 4 kernel workers (plus the serial reference the
# determinism assertion compares against), short window. Any data race in
# the barrier/delivery machinery or any simulated-result drift across
# worker counts fails the run.
parallel-kernel-smoke:
	go run -race ./cmd/docephbench -exp scaleout -quick -sim-workers 1,4

# The 128-OSD multi-rack cluster under the race detector: the popularity
# ablation (uniform/Zipf/hotspot x balance-reads) with imbalance metrics,
# plus the worker-count determinism sweep on the Zipf arm (byte-identical
# results enforced inside the experiment), reduced windows.
scaleout128-smoke:
	go run -race ./cmd/docephbench -exp scaleout128 -quick -sim-workers 1,4

# The read path under the race detector: the op-mix ablation (read/70:30/
# 50:50 x replica-read balancing x DPU read cache x deployment, plus the
# queue-depth arm) and the striped block-device comparison with its CRC
# readback, quick windows against both deployments.
readpath-smoke:
	go run -race ./cmd/docephbench -exp readpath -quick -threads 4

# The streaming data plane under the race detector: the store-and-forward
# vs chunk-pipelining ablation (4-64MB objects x credit windows x both
# deployments), with the engagement self-checks enforced by the runner.
streaming-smoke:
	go run -race ./cmd/docephbench -exp streaming -quick -threads 4

# The paper's full methodology (60 s windows): every table and figure.
results:
	go run ./cmd/docephbench -exp all | tee results_full.txt

# Fast shape-preserving runs for CI.
quick:
	go run ./cmd/docephbench -quick -exp all

# Simulator throughput harness: runs the radosbench sweep and writes
# events/sec, ns/op and allocs/op to BENCH_sim.json (compared against the
# recorded pre-optimization baseline). `-rebaseline` resets the baseline.
# Sweep cells run on one worker per core with deterministic ordered output;
# `-workers 1` forces the serial sweep (per-scenario alloc attribution).
bench:
	go run ./cmd/simbench -out BENCH_sim.json

# ~30 s smoke variant wired into `all`: runs the reduced sweep (tracing
# disabled) and fails if events/sec collapses versus the BENCH_sim.json
# record — without touching the file. This is the guard that keeps the
# tracing hooks free when tracing is off.
bench-smoke:
	go run ./cmd/simbench -smoke -guard BENCH_sim.json

# Per-package statement-coverage floors for the offload-critical packages
# (core, doca, osd, messenger, sim, perf); see scripts/covergate.sh for
# the recorded floors.
cover:
	./scripts/covergate.sh

# Traced benchmark: per-stage CPU/latency tables for both deployments plus
# Chrome trace_event JSON for chrome://tracing or ui.perfetto.dev.
trace:
	go run ./cmd/docephbench -trace -quick -trace-out trace

# Go micro-benchmarks (wire codec, heap, etc.).
microbench:
	go test -bench=. -benchmem -benchtime=1x ./...

examples:
	go run ./examples/quickstart
	go run ./examples/cpubreakdown
	go run ./examples/dmapipeline
	go run ./examples/failover
	go run ./examples/blockdevice
	go run ./examples/dashboard
	go run ./examples/chaos -seconds 20 -threads 4

package doceph

import (
	"fmt"

	"doceph/internal/faultinject"
	"doceph/internal/report"
	"doceph/internal/sim"
	"doceph/internal/wire"
)

// Chaos experiment: both deployments run the same closed-loop write/verify
// workload while an identical seeded fault plan degrades the network, the
// storage backend, the DPU data path and individual OSDs. The experiment
// checks the robustness machinery end to end — messenger session resets,
// client timeout/resend, replication retry/abort, scrub repair — and reports
// throughput dip and recovery time per deployment. Everything runs on
// virtual time from one seed, so a (seed, plan) pair reproduces bit-identical
// results (asserted by TestChaosDeterminism).

// Re-exported fault-plan types (the plan DSL lives in internal/faultinject).
type (
	// FaultPlan is a named, ordered fault schedule.
	FaultPlan = faultinject.Plan
	// FaultEvent is one timed fault of a plan.
	FaultEvent = faultinject.Event
	// FaultKind enumerates the injectable fault classes.
	FaultKind = faultinject.Kind
)

// Fault kinds, re-exported for plan construction.
const (
	FaultDrop       = faultinject.Drop
	FaultLatency    = faultinject.Latency
	FaultBandwidth  = faultinject.Bandwidth
	FaultPartition  = faultinject.Partition
	FaultSlowIO     = faultinject.SlowIO
	FaultWriteError = faultinject.WriteError
	FaultBitRot     = faultinject.BitRot
	FaultDMAError   = faultinject.DMAError
	FaultCommStall  = faultinject.CommStall
	FaultOSDCrash   = faultinject.OSDCrash
)

// ChaosOptions controls the chaos run.
type ChaosOptions struct {
	// Duration is the workload length (fault windows scale with it).
	Duration Duration
	// Threads is the number of closed-loop client workers.
	Threads int
	// ObjectBytes is the write size.
	ObjectBytes int64
	// Seed seeds both clusters and every probabilistic fault draw.
	Seed int64
	// VerifyEvery makes each worker read back one of its own objects after
	// every VerifyEvery writes (inline integrity checking under faults).
	VerifyEvery int
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Duration == 0 {
		o.Duration = 60 * Second
	}
	if o.Threads == 0 {
		o.Threads = 8
	}
	if o.ObjectBytes == 0 {
		o.ObjectBytes = 1 << 20
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.VerifyEvery == 0 {
		o.VerifyEvery = 4
	}
	return o
}

// DefaultChaosPlan builds the standard mixed fault schedule, with windows
// placed at fixed fractions of d so the same shape works for quick and full
// runs. The last ~16% of the run is fault-free, giving the recovery-time
// measurement a clean tail. Bit-rot and the OSD crash both target node1 /
// osd.1, so corrupted replica copies are never promoted to serving reads —
// scrub, not luck, is what restores redundancy.
func DefaultChaosPlan(d Duration) FaultPlan {
	frac := func(f float64) Duration { return Duration(float64(d) * f) }
	return FaultPlan{Name: "default-chaos", Events: []FaultEvent{
		{At: frac(0.10), Duration: frac(0.15), Kind: FaultDrop, Node: "node1", Prob: 0.05},
		{At: frac(0.15), Duration: frac(0.10), Kind: FaultLatency, Node: "node0", Extra: 2 * sim.Millisecond},
		{At: frac(0.30), Duration: frac(0.15), Kind: FaultOSDCrash, OSD: 1},
		{At: frac(0.50), Duration: frac(0.10), Kind: FaultSlowIO, Node: "node0", Extra: 3 * sim.Millisecond},
		{At: frac(0.62), Duration: frac(0.08), Kind: FaultWriteError, Node: "node0", Prob: 0.02},
		{At: frac(0.72), Kind: FaultBitRot, Node: "node1", Count: 5},
		{At: frac(0.76), Duration: frac(0.08), Kind: FaultDMAError, Node: "node0", Prob: 0.2},
		{At: frac(0.76), Duration: frac(0.08), Kind: FaultCommStall, Node: "node1", Extra: sim.Millisecond},
	}}
}

// ChaosModeResult is one deployment's behaviour under the fault plan.
type ChaosModeResult struct {
	Mode string

	// Workload outcome: every op either succeeded (possibly after client
	// retries) or returned a typed error within its deadline — never hung.
	Ops    int64
	Errors int64

	// Client robustness counters.
	Retries, Timeouts, Redirects, StaleReplies, MapRefreshes int64
	// Messenger/fabric counters (summed over all messengers).
	SessionResets, Redeliveries, DroppedFrames int64
	// OSD replication watchdog counters.
	RepRetries, RepAborts int64
	// Scrub outcome after the run.
	ScrubErrors, ScrubRepairs int64
	// Injected-fault ledger.
	InjectedEvents, BitRotObjects, InjectedWriteErrors, DMAErrors int64

	// Integrity: reads verified against the writer's CRC32C, inline during
	// the faults plus a full post-run pass over every surviving object.
	IntegrityChecked, IntegrityOK int64

	// Per-second write throughput over the run.
	MBps []float64
	// CleanMBps averages the seconds outside every fault window.
	CleanMBps float64
	// DipPct is the worst in-window second relative to CleanMBps
	// (100 = no dip, 0 = full stall).
	DipPct float64
	// RecoverySeconds is how long after the last fault window closed the
	// throughput first reached 80% of CleanMBps again (-1 = never).
	RecoverySeconds float64
}

// ChaosResult compares both deployments under the identical plan.
type ChaosResult struct {
	PlanName string
	Seed     int64
	Baseline ChaosModeResult
	DoCeph   ChaosModeResult
}

// RunChaos executes the chaos workload on both deployments under plan (nil
// selects DefaultChaosPlan). The two runs use separate clusters built from
// the same seed, so they experience the identical fault schedule.
func RunChaos(opts ChaosOptions, plan *FaultPlan) (ChaosResult, error) {
	opts = opts.withDefaults()
	pl := DefaultChaosPlan(opts.Duration)
	if plan != nil {
		pl = *plan
	}
	out := ChaosResult{PlanName: pl.Name, Seed: opts.Seed}
	for _, m := range []struct {
		mode Mode
		dst  *ChaosModeResult
	}{{Baseline, &out.Baseline}, {DoCeph, &out.DoCeph}} {
		r, err := runChaosMode(m.mode, opts, pl)
		if err != nil {
			return out, fmt.Errorf("chaos %v: %w", m.mode, err)
		}
		*m.dst = r
	}
	return out, nil
}

func runChaosMode(mode Mode, opts ChaosOptions, plan FaultPlan) (ChaosModeResult, error) {
	cl := NewCluster(ClusterConfig{Mode: mode, Seed: opts.Seed})
	defer cl.Shutdown()
	res := ChaosModeResult{Mode: mode.String()}

	inj := faultinject.New(cl.Env, cl.FaultTargets())
	if err := inj.Run(plan); err != nil {
		return res, fmt.Errorf("fault plan rejected: %w", err)
	}

	payload := make([]byte, opts.ObjectBytes)
	for i := range payload {
		payload[i] = byte(i * 2654435761)
	}
	wantCRC := wire.FromBytes(payload).CRC32C()

	var (
		stopped  bool
		perSecBy []int64
		written  = make([][]string, opts.Threads)
	)
	start := cl.Env.Now()
	record := func(end sim.Time, bytes int64) {
		sec := int(end.Sub(start) / sim.Duration(sim.Second))
		for len(perSecBy) <= sec {
			perSecBy = append(perSecBy, 0)
		}
		perSecBy[sec] += bytes
	}
	verify := func(p *sim.Proc, obj string) {
		bl, err := cl.Client.Read(p, obj, 0, 0)
		if err != nil {
			// A fault window can make the read itself fail; that is an
			// availability error, not an integrity violation.
			res.Errors++
			return
		}
		res.IntegrityChecked++
		if bl.CRC32C() == wantCRC {
			res.IntegrityOK++
		}
	}

	workersDone := 0
	for w := 0; w < opts.Threads; w++ {
		worker := w
		cl.Env.Spawn(fmt.Sprintf("chaos-worker-%d", w), func(p *sim.Proc) {
			p.SetThread(sim.NewThread(fmt.Sprintf("chaos-%d", worker), "client"))
			defer func() { workersDone++ }()
			for i := 0; !stopped; i++ {
				obj := fmt.Sprintf("chaos_w%d_%d", worker, i)
				res.Ops++
				if err := cl.Client.Write(p, obj, wire.FromBytes(payload)); err != nil {
					// Typed error within the op deadline — the op did not
					// hang, the workload carries on.
					res.Errors++
					continue
				}
				written[worker] = append(written[worker], obj)
				record(p.Now(), opts.ObjectBytes)
				if n := len(written[worker]); n > 0 && n%opts.VerifyEvery == 0 {
					pick := written[worker][cl.Env.Rand().Intn(n)]
					res.Ops++
					verify(p, pick)
				}
			}
		})
	}
	cl.Env.Spawn("chaos-controller", func(p *sim.Proc) {
		p.Wait(opts.Duration)
		stopped = true
	})
	for !stopped {
		if err := cl.Env.RunUntil(cl.Env.Now().Add(sim.Second)); err != nil {
			return res, err
		}
	}
	// Drain in-flight ops: workers check `stopped` only between ops, so one
	// op deadline bounds the tail.
	for workersDone < opts.Threads {
		if err := cl.Env.RunUntil(cl.Env.Now().Add(sim.Second)); err != nil {
			return res, err
		}
	}

	// Post-run: scrub every PG (repairing injected bit-rot), then verify
	// every object the workload managed to write.
	verifyDone := false
	cl.Env.Spawn("chaos-verify", func(p *sim.Proc) {
		p.SetThread(sim.NewThread("chaos-verify", "client"))
		var scrubs []*sim.Event
		for _, n := range cl.Nodes {
			scrubs = append(scrubs, n.OSD.ScrubNow())
		}
		for _, ev := range scrubs {
			ev.Wait(p)
		}
		for _, objs := range written {
			for _, obj := range objs {
				verify(p, obj)
			}
		}
		verifyDone = true
	})
	for !verifyDone {
		if err := cl.Env.RunUntil(cl.Env.Now().Add(5 * sim.Second)); err != nil {
			return res, err
		}
	}

	// Collect counters.
	cs := cl.Client.Stats()
	res.Retries, res.Timeouts, res.Redirects = cs.Retries, cs.Timeouts, cs.Redirects
	res.StaleReplies, res.MapRefreshes = cs.StaleReplies, cs.MapRefreshes
	res.DroppedFrames = cl.Fabric.DroppedFrames()
	for _, n := range cl.Nodes {
		ms := n.OSD.Stats()
		res.RepRetries += ms.RepRetries
		res.RepAborts += ms.RepAborts
		res.ScrubErrors += ms.ScrubErrors
		res.ScrubRepairs += ms.ScrubRepairs
		res.InjectedWriteErrors += n.Store.Stats().InjectedErrors
		if n.Bridge != nil {
			res.DMAErrors += n.Bridge.EngUp.Stats().Errors + n.Bridge.EngDown.Stats().Errors
		}
	}
	for _, m := range cl.Registry.All() {
		st := m.Stats()
		res.SessionResets += st.SessionResets
		res.Redeliveries += st.Redeliveries
	}
	for _, c := range inj.Counters().Snapshot() {
		if c.Name == "bit_rot_objects" {
			res.BitRotObjects = c.Value
		} else {
			res.InjectedEvents += c.Value
		}
	}

	// Throughput series + dip/recovery against the plan's fault windows.
	for _, b := range perSecBy {
		res.MBps = append(res.MBps, float64(b)/1e6)
	}
	res.CleanMBps, res.DipPct, res.RecoverySeconds = chaosDipRecovery(res.MBps, plan)
	return res, nil
}

// chaosDipRecovery computes the clean-second mean, the worst in-window
// second relative to it, and the time from the last window's close until
// throughput is back within 80% of the clean mean.
func chaosDipRecovery(mbps []float64, plan FaultPlan) (clean, dipPct, recovery float64) {
	type window struct{ from, to int }
	var windows []window
	lastEnd := 0
	for _, ev := range plan.Events {
		from := int(ev.At / sim.Duration(sim.Second))
		to := from
		if ev.Duration > 0 {
			to = int((ev.At + ev.Duration) / sim.Duration(sim.Second))
		}
		windows = append(windows, window{from, to})
		if to > lastEnd {
			lastEnd = to
		}
	}
	inWindow := func(sec int) bool {
		for _, w := range windows {
			if sec >= w.from && sec <= w.to {
				return true
			}
		}
		return false
	}
	var sum float64
	var n int
	for sec, v := range mbps {
		if !inWindow(sec) {
			sum += v
			n++
		}
	}
	if n > 0 {
		clean = sum / float64(n)
	}
	dip := clean
	for sec, v := range mbps {
		if inWindow(sec) && v < dip {
			dip = v
		}
	}
	dipPct = 100
	if clean > 0 {
		dipPct = dip / clean * 100
	}
	recovery = -1
	for sec := lastEnd + 1; sec < len(mbps); sec++ {
		if mbps[sec] >= 0.8*clean {
			recovery = float64(sec - lastEnd)
			break
		}
	}
	return clean, dipPct, recovery
}

// ChaosTable renders the comparison.
func ChaosTable(r ChaosResult) *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Chaos: plan %q, seed %d — Baseline vs DoCeph", r.PlanName, r.Seed),
		Header: []string{"metric", "Baseline", "DoCeph"},
	}
	i64 := func(v int64) string { return fmt.Sprint(v) }
	row := func(name string, b, d int64) { t.AddRow(name, i64(b), i64(d)) }
	row("ops issued", r.Baseline.Ops, r.DoCeph.Ops)
	row("typed errors", r.Baseline.Errors, r.DoCeph.Errors)
	row("client retries", r.Baseline.Retries, r.DoCeph.Retries)
	row("client timeouts", r.Baseline.Timeouts, r.DoCeph.Timeouts)
	row("stale replies", r.Baseline.StaleReplies, r.DoCeph.StaleReplies)
	row("map refreshes", r.Baseline.MapRefreshes, r.DoCeph.MapRefreshes)
	row("session resets", r.Baseline.SessionResets, r.DoCeph.SessionResets)
	row("frames dropped", r.Baseline.DroppedFrames, r.DoCeph.DroppedFrames)
	row("rep retries", r.Baseline.RepRetries, r.DoCeph.RepRetries)
	row("rep aborts", r.Baseline.RepAborts, r.DoCeph.RepAborts)
	row("scrub errors", r.Baseline.ScrubErrors, r.DoCeph.ScrubErrors)
	row("scrub repairs", r.Baseline.ScrubRepairs, r.DoCeph.ScrubRepairs)
	row("bit-rot objects", r.Baseline.BitRotObjects, r.DoCeph.BitRotObjects)
	row("injected store errors", r.Baseline.InjectedWriteErrors, r.DoCeph.InjectedWriteErrors)
	row("DMA errors", r.Baseline.DMAErrors, r.DoCeph.DMAErrors)
	row("integrity checked", r.Baseline.IntegrityChecked, r.DoCeph.IntegrityChecked)
	row("integrity ok", r.Baseline.IntegrityOK, r.DoCeph.IntegrityOK)
	t.AddRow("clean MB/s", report.F2(r.Baseline.CleanMBps), report.F2(r.DoCeph.CleanMBps))
	t.AddRow("worst dip (% of clean)", report.F2(r.Baseline.DipPct), report.F2(r.DoCeph.DipPct))
	t.AddRow("recovery (s)", report.F2(r.Baseline.RecoverySeconds), report.F2(r.DoCeph.RecoverySeconds))
	t.AddNote("identical fault schedule on both deployments; every op resolves " +
		"(success after retries, or a typed error) within its virtual-time deadline")
	if r.Baseline.IntegrityChecked == r.Baseline.IntegrityOK &&
		r.DoCeph.IntegrityChecked == r.DoCeph.IntegrityOK {
		t.AddNote("payload integrity: 100%% of verified reads matched the written CRC32C")
	}
	return t
}

// Command docephd runs one simulated cluster with a configurable workload
// and prints a full summary: benchmark metrics, per-category CPU accounting
// on host and DPU, per-second throughput/latency series, and (in DoCeph
// mode) the proxy's data-plane statistics and latency breakdown.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"doceph"
	"doceph/internal/report"
)

func main() {
	mode := flag.String("mode", "doceph", "deployment: baseline or doceph")
	sizeMB := flag.Int("size", 4, "object size in MiB")
	threads := flag.Int("threads", 16, "concurrent clients")
	seconds := flag.Int("seconds", 10, "measured window (s)")
	warmup := flag.Int("warmup", 2, "warmup (s)")
	nodes := flag.Int("nodes", 2, "storage nodes")
	replicas := flag.Int("replicas", 2, "replication factor")
	link := flag.Float64("gbps", 100, "link rate in Gbit/s")
	seed := flag.Int64("seed", 42, "simulation seed")
	op := flag.String("op", "write", "workload: write or read")
	perSecond := flag.Bool("persec", false, "print the per-second series")
	flag.Parse()

	m := doceph.Baseline
	if *mode == "doceph" {
		m = doceph.DoCeph
	} else if *mode != "baseline" {
		log.Fatalf("unknown -mode %q", *mode)
	}
	workload := doceph.WriteWorkload
	if *op == "read" {
		workload = doceph.ReadWorkload
	} else if *op != "write" {
		log.Fatalf("unknown -op %q", *op)
	}

	cl := doceph.NewCluster(doceph.ClusterConfig{
		Mode:            m,
		StorageNodes:    *nodes,
		Replicas:        *replicas,
		LinkBytesPerSec: *link * 1e9 / 8,
		Seed:            *seed,
	})
	defer cl.Shutdown()

	res, err := doceph.RunBench(cl, doceph.BenchConfig{
		Threads:     *threads,
		ObjectBytes: int64(*sizeMB) << 20,
		Duration:    doceph.Duration(*seconds) * doceph.Second,
		Warmup:      doceph.Duration(*warmup) * doceph.Second,
		Op:          workload,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cluster: %s | %d nodes x %d replicas | %.0f Gbps | seed %d\n",
		*mode, *nodes, *replicas, *link, *seed)
	fmt.Println(res)
	fmt.Printf("latency: min %.4fs  p50 %.4fs  p99 %.4fs  max %.4fs\n",
		res.MinLatency.Seconds(), res.P50.Seconds(),
		res.P99.Seconds(), res.MaxLatency.Seconds())

	host := cl.HostCPUMerged()
	fmt.Printf("\nhost CPU (1-core norm): %s\n", report.Pct(host.SingleCoreUtilization()))
	cats := host.Categories()
	sort.Slice(cats, func(i, j int) bool { return host.BusyByCat[cats[i]] > host.BusyByCat[cats[j]] })
	for _, c := range cats {
		fmt.Printf("  %-14s %8s  (switches %d)\n", c, report.Pct(host.ShareOf(c)),
			host.SwitchesByCat[c])
	}
	if m == doceph.DoCeph {
		d := cl.DPUCPUMerged()
		fmt.Printf("DPU ARM CPU (1-core norm): %s\n", report.Pct(d.SingleCoreUtilization()))
		b := cl.ProxyBreakdownMerged()
		hw, dma, wait := b.Avg()
		fmt.Printf("proxy breakdown (avg per txn): host-write %.4fs  dma %.4fs  dma-wait %.4fs\n",
			hw.Seconds(), dma.Seconds(), wait.Seconds())
		for i, n := range cl.Nodes {
			st := n.Bridge.Proxy.Stats()
			fmt.Printf("  node%d: dma-txns %d, fallbacks %d, control-calls %d, probes %d\n",
				i, st.DataPlaneTxns, st.FallbackTxns+st.FallbackSegments,
				st.ControlCalls, st.Probes)
		}
	}
	if *perSecond {
		fmt.Println("\nper-second series:")
		for _, s := range res.PerSecond {
			fmt.Printf("  t=%2ds  ops=%4d  %7.1f MB/s  avg-lat %.4fs\n",
				s.Second, s.Ops, float64(s.Bytes)/1e6, s.AvgLat.Seconds())
		}
	}
}

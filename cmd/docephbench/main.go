// Command docephbench regenerates every table and figure of the paper's
// evaluation section from the simulation.
//
// Usage:
//
//	docephbench [-exp all|fig5|fig6|table2|fig7|fig8|fig9|fig10|table3|read|smallops|ablation|chaos]
//	            [-quick] [-seconds N] [-threads N] [-seed N]
//	            [-batch-bytes N] [-batch-op-bytes N] [-batch-delay-us N] [-batch-idle-us N]
//
// With -quick the runs are shortened (8 s measured window instead of the
// paper's 60 s); shapes are preserved.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"doceph"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig5, fig6, table2, fig7, fig8, fig9, fig10, table3, read, readpath, smallops, mq, streaming, ablation, stability, scale, scaleout, scaleout128, chaos, selfheal")
	quick := flag.Bool("quick", false, "short runs (8s window) instead of the paper's 60s")
	seconds := flag.Int("seconds", 0, "override the measured window length in seconds")
	threads := flag.Int("threads", 16, "concurrent bench clients")
	seed := flag.Int64("seed", 42, "simulation seed")
	traceRun := flag.Bool("trace", false, "run traced benchmarks (baseline + DoCeph) and print per-stage CPU/latency breakdowns")
	traceOut := flag.String("trace-out", "", "with -trace: write Chrome trace_event JSON to <prefix>-baseline.json and <prefix>-doceph.json")
	traceSize := flag.Int64("trace-size", 4<<20, "with -trace: request size in bytes")
	batchBytes := flag.Int64("batch-bytes", 0, "smallops: max coalesced frame payload bytes (0 = default 1MB)")
	batchOpBytes := flag.Int64("batch-op-bytes", 0, "smallops: largest op eligible for batching (0 = default 256KB)")
	batchDelayUs := flag.Int64("batch-delay-us", 0, "smallops: max per-op batching delay in µs (0 = default 400)")
	batchIdleUs := flag.Int64("batch-idle-us", 0, "smallops: queue-idle flush gap in µs (0 = default 40)")
	dmaQueues := flag.Int("dma-queues", 0, "DPU DMA engine queues on DoCeph arms (0 = default 1, the serial engine)")
	opShards := flag.Int("op-shards", 0, "OSD op-queue shards (0 = default 1)")
	msgrLanes := flag.Int("msgr-lanes", 0, "messenger lanes per connection (0 = follow -dma-queues)")
	minSize := flag.Int("min-size", 0, "selfheal: write-quorum floor, PGs accept degraded writes down to this many replicas (0 = experiment default 1)")
	recoveryMaxPGs := flag.Int("recovery-max-pgs", 0, "selfheal: concurrent backfill reservations per OSD (0 = experiment default 2)")
	recoveryBps := flag.Float64("recovery-bps", 0, "selfheal: recovery bandwidth budget per OSD in bytes/s (0 = experiment default 64e6)")
	dpuBreaker := flag.Bool("dpu-breaker", true, "selfheal: enable the DPU-offload circuit breaker (host-path failover)")
	dpuBreakerThreshold := flag.Int("dpu-breaker-threshold", 0, "selfheal: DMA failures inside the window that trip the breaker (0 = default)")
	dpuBreakerOpenMs := flag.Int64("dpu-breaker-open-ms", 0, "selfheal: breaker open timeout before probing, in ms (0 = duration-scaled default)")
	simWorkers := flag.String("sim-workers", "", "scaleout/scaleout128: comma-separated parallel kernel worker counts to compare (default 1,2,4,8)")
	flag.Parse()

	opts := doceph.FullOptions()
	if *quick {
		opts = doceph.QuickOptions()
	}
	if *seconds > 0 {
		opts.Duration = doceph.Duration(*seconds) * doceph.Second
	}
	opts.Threads = *threads
	opts.Seed = *seed
	opts.Batch = doceph.BatchConfig{
		MaxBatchBytes: *batchBytes,
		MaxOpBytes:    *batchOpBytes,
		MaxDelay:      doceph.Duration(*batchDelayUs) * doceph.Microsecond,
		IdleDelay:     doceph.Duration(*batchIdleUs) * doceph.Microsecond,
	}
	opts.DMAQueues = *dmaQueues
	opts.OpShards = *opShards
	opts.MsgrLanes = *msgrLanes

	// -trace alone means "just the traced run": keep the full sweep only if
	// the user also asked for a specific experiment.
	if *traceRun && *exp == "all" {
		*exp = "none"
	}

	want := func(names ...string) bool {
		if *exp == "all" {
			return true
		}
		for _, n := range names {
			if strings.EqualFold(*exp, n) {
				return true
			}
		}
		return false
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "docephbench:", err)
		os.Exit(1)
	}

	if want("fig5", "fig6", "table2") {
		fmt.Println("running messenger profile (baseline, 1G vs 100G)...")
		prof, err := doceph.RunMessengerProfile(opts)
		if err != nil {
			fail(err)
		}
		if want("fig5") {
			fmt.Println(prof.Fig5Table())
		}
		if want("fig6") {
			fmt.Println(prof.Fig6Table())
		}
		if want("table2") {
			fmt.Println(prof.Table2())
		}
	}

	if want("fig7", "fig8", "fig9", "fig10", "table3") {
		fmt.Println("running size sweep (baseline vs DoCeph, 1-16MB writes)...")
		rows, err := doceph.RunSizeSweep(opts, nil)
		if err != nil {
			fail(err)
		}
		if want("fig7") {
			fmt.Println(doceph.Fig7Table(rows))
		}
		if want("fig8") {
			fmt.Println(doceph.Fig8Table(rows))
		}
		if want("table3") {
			fmt.Println(doceph.Table3(rows))
		}
		if want("fig9") {
			fmt.Println(doceph.Fig9Table(rows))
		}
		if want("fig10") {
			fmt.Println(doceph.Fig10Table(rows))
		}
	}

	// Smallops is opt-in (not part of "all"): it is an extension below the
	// paper's 1MB floor, probing the Figure-10 gap and what adaptive
	// batching buys back.
	if strings.EqualFold(*exp, "smallops") {
		fmt.Println("running small-op sweep (baseline vs DoCeph vs DoCeph+batching, 4-256KB writes)...")
		rows, err := doceph.RunSmallOpsSweep(opts, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.SmallOpsTable(rows))
	}

	// The multi-queue ablation is opt-in (not part of "all"): like smallops
	// it is an extension probing the serial-engine ceiling below the
	// paper's 1MB floor.
	if strings.EqualFold(*exp, "mq") {
		fmt.Println("running multi-queue ablation (batched DoCeph, 1/2/4/8 queues, 4-64KB writes)...")
		rows, err := doceph.RunMultiQueueSweep(opts, nil, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.MultiQueueTable(rows))
	}

	if want("read") {
		fmt.Println("running read-path extension sweep...")
		rows, err := doceph.RunReadSweep(opts, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.ReadTable(rows))
	}

	// Readpath is opt-in (not part of "all"): it is the full read-path
	// extension — op mixes, queue depth, replica-read balancing and the
	// DPU-side read cache, plus the RBD-style striped block device.
	if strings.EqualFold(*exp, "readpath") {
		fmt.Println("running read-path ablation (op mix x balance x DPU cache x deployment)...")
		rows, err := doceph.RunReadPathAblation(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.ReadPathTable(rows))
		fmt.Println("running block-device comparison (striped RBD-style volume)...")
		brows, err := doceph.RunBlockDeviceComparison(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.BlockDeviceTable(brows))
	}

	// Streaming is opt-in (not part of "all"): it ablates the flow-controlled
	// chunk-pipelined data plane against store-and-forward for large objects,
	// across credit-window sizes on both deployments.
	if strings.EqualFold(*exp, "streaming") {
		fmt.Println("running streaming ablation (store-and-forward vs chunk pipelining, 4-64MB writes)...")
		rows, err := doceph.RunStreamingAblation(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.StreamingTable(rows))
	}

	if want("stability") {
		fmt.Println("running stability comparison (per-second throughput)...")
		r, err := doceph.RunStability(opts, 4<<20)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.StabilityTable(r))
	}

	if want("scale") {
		fmt.Println("running scale-out sweep (2/4/8 nodes)...")
		rows, err := doceph.RunScaleSweep(opts, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.ScaleTable(rows))
	}

	// Scaleout is opt-in (not part of "all"): it exercises the partitioned
	// parallel event kernel on the 32-OSD multi-rack cluster and compares
	// wall-clock throughput across kernel worker counts; the simulated
	// results are asserted bit-identical across all of them.
	if strings.EqualFold(*exp, "scaleout") {
		fmt.Println("running partitioned scale-out (8 racks x 4 OSDs, parallel kernel)...")
		sopts := doceph.ScaleOutOptions{Seed: opts.Seed}
		if *seconds > 0 {
			sopts.Duration = doceph.Duration(*seconds) * doceph.Second
		} else if *quick {
			sopts.Duration = doceph.Second
			sopts.Warmup = 250 * doceph.Millisecond
		}
		if *simWorkers != "" {
			for _, part := range strings.Split(*simWorkers, ",") {
				var w int
				if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &w); err != nil || w <= 0 {
					fail(fmt.Errorf("bad -sim-workers entry %q", part))
				}
				sopts.Workers = append(sopts.Workers, w)
			}
		}
		rows, err := doceph.RunScaleOut(sopts)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.ScaleOutTable(rows))
	}

	// Scaleout128 is opt-in (not part of "all"): the 128-OSD, 16-rack CRUSH
	// cluster under uniform vs Zipf vs hotspot popularity x balance-reads,
	// with imbalance metrics per arm and a worker-count determinism sweep on
	// the Zipf arm.
	if strings.EqualFold(*exp, "scaleout128") {
		fmt.Println("running 128-OSD scale-out (16 racks x 8 OSDs, popularity x balance-reads)...")
		sopts := doceph.ScaleOut128Options{Seed: opts.Seed}
		if *seconds > 0 {
			sopts.Duration = doceph.Duration(*seconds) * doceph.Second
		} else if *quick {
			sopts.Duration = 500 * doceph.Millisecond
			sopts.Warmup = 250 * doceph.Millisecond
		}
		if *simWorkers != "" {
			for _, part := range strings.Split(*simWorkers, ",") {
				var w int
				if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &w); err != nil || w <= 0 {
					fail(fmt.Errorf("bad -sim-workers entry %q", part))
				}
				sopts.Workers = append(sopts.Workers, w)
			}
		}
		rows, err := doceph.RunScaleOut128(sopts)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.ScaleOut128Table(rows))
	}

	// Chaos is opt-in (not part of "all"): it is a robustness experiment,
	// not a paper figure.
	if strings.EqualFold(*exp, "chaos") {
		fmt.Println("running chaos experiment (fault plan, baseline vs DoCeph)...")
		copts := doceph.ChaosOptions{
			Duration: opts.Duration,
			Threads:  opts.Threads,
			Seed:     opts.Seed,
		}
		r, err := doceph.RunChaos(copts, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.ChaosTable(r))
	}

	// Selfheal is opt-in (not part of "all"): it is a robustness experiment
	// driving the compound OSD-crash + DPU-fault schedule through the
	// circuit breaker, degraded-mode writes and recovery QoS, then ablating
	// breaker x QoS on the DoCeph arm.
	if strings.EqualFold(*exp, "selfheal") {
		fmt.Println("running self-healing experiment (OSD crash + DPU fault, baseline vs DoCeph)...")
		sopts := doceph.SelfHealOptions{
			Duration:       opts.Duration,
			Threads:        opts.Threads,
			Seed:           opts.Seed,
			MinSize:        *minSize,
			RecoveryMaxPGs: *recoveryMaxPGs,
			RecoveryBps:    *recoveryBps,
			DisableBreaker: !*dpuBreaker,
		}
		if *dpuBreakerThreshold > 0 || *dpuBreakerOpenMs > 0 {
			b := doceph.DefaultBreakerConfig()
			b.Enable = true
			if *dpuBreakerThreshold > 0 {
				b.FailureThreshold = *dpuBreakerThreshold
			}
			if *dpuBreakerOpenMs > 0 {
				b.OpenTimeout = doceph.Duration(*dpuBreakerOpenMs) * doceph.Millisecond
			}
			sopts.Breaker = b
		}
		r, err := doceph.RunSelfHeal(sopts, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.SelfHealTable(r))
		fmt.Println("running self-healing ablation (DoCeph, breaker x QoS)...")
		rows, err := doceph.RunSelfHealAblation(sopts)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.SelfHealAblationTable(rows))
	}

	// Tracing is opt-in (not part of "all"): it is an observability view,
	// not a paper figure.
	if *traceRun {
		fmt.Println("running traced benchmark (baseline vs DoCeph)...")
		r, err := doceph.RunTraceBreakdown(opts, *traceSize)
		if err != nil {
			fail(err)
		}
		fmt.Println(r.Baseline.StageTable(r.SizeBytes))
		fmt.Println(r.DoCeph.StageTable(r.SizeBytes))
		fmt.Println(r.CPUAttributionTable())
		if *traceOut != "" {
			for _, run := range []doceph.TracedRun{r.Baseline, r.DoCeph} {
				path := fmt.Sprintf("%s-%s.json", *traceOut, run.Mode)
				if err := os.WriteFile(path, doceph.ChromeTrace(run.Spans), 0o644); err != nil {
					fail(err)
				}
				fmt.Printf("wrote %s (%d spans)\n", path, len(run.Spans))
			}
		}
	}

	if want("ablation") {
		fmt.Println("running ablations...")
		rows, err := doceph.RunAblations(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(doceph.AblationTable(rows))
	}
}

// Command simbench measures the simulator's own wall-clock performance
// (events/sec, ns/op, allocs/op over the radosbench sweep) and maintains
// BENCH_sim.json: a pre-optimization baseline recorded once plus the
// current numbers and their ratios, so `make bench` tracks the perf
// trajectory from PR to PR.
//
// A failed benchmark run exits non-zero before touching the result file:
// BENCH_sim.json is only ever rewritten from a complete, successful sweep
// (see perf.UpdateFile).
//
// Usage:
//
//	go run ./cmd/simbench                 # update "current", compare to baseline
//	go run ./cmd/simbench -rebaseline     # overwrite the stored baseline too
//	go run ./cmd/simbench -smoke          # short sweep, no file written
//	go run ./cmd/simbench -smoke -guard BENCH_sim.json
//	                                      # also fail on a gross perf regression
//	go run ./cmd/simbench -workers 1      # serial sweep with per-scenario
//	                                      # alloc attribution (default runs
//	                                      # scenarios on parallel workers)
//	go run ./cmd/simbench -sim-workers 1,2,8
//	                                      # scale-out rows at these kernel
//	                                      # worker counts (@wN rows)
//	go run ./cmd/simbench -cpuprofile cpu.pprof -memprofile mem.pprof
//	                                      # kernel hotspot profiles for
//	                                      # `go tool pprof` (see EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"doceph/internal/perf"
)

func main() {
	var (
		out         = flag.String("out", "BENCH_sim.json", "result file to maintain")
		rebaseline  = flag.Bool("rebaseline", false, "record this run as the baseline")
		smoke       = flag.Bool("smoke", false, "short sweep, print only, no file written")
		guard       = flag.String("guard", "", "fail if events/sec falls below -guard-ratio of this file's current record")
		guardRatio  = flag.Float64("guard-ratio", 0.3, "minimum fraction of the recorded events/sec the run must reach")
		guardAllocs = flag.Float64("guard-allocs-ratio", 2.0, "maximum multiple of the recorded allocs/op the run may reach (0 disables)")
		workers     = flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS, 1 = serial with per-scenario alloc attribution)")
		simWorkers  = flag.String("sim-workers", "", "comma-separated kernel worker counts for the scale-out rows (e.g. 1,2,8; empty keeps the sweep's defaults)")
		minSpeedup  = flag.Float64("min-speedup", 3.0, "nominal @w1-vs-widest events/s floor for scale-out families (scaled to the host's cores; 0 disables)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprofile  = flag.String("memprofile", "", "write an allocation profile taken after the sweep to this file")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}

	sweep := perf.DefaultSweep()
	if *smoke {
		sweep = perf.SmokeSweep()
	}
	if *simWorkers != "" {
		counts, err := parseWorkerList(*simWorkers)
		if err != nil {
			fail(err)
		}
		sweep = perf.ScaleOutWorkerRows(sweep, counts)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	rep, err := perf.RunSweepWorkers(sweep, *workers)
	if err != nil {
		fail(err)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}

	for _, m := range rep.Scenarios {
		fmt.Printf("%-24s %8d ops  %12.0f events/s  %10.0f ns/op  %8.1f allocs/op\n",
			m.Name, m.Ops, m.EventsPerSec, m.NsPerOp, m.AllocsPerOp)
	}
	fmt.Printf("%-24s %21.0f events/s  %10.0f ns/op  %8.1f allocs/op\n",
		"TOTAL", rep.EventsPerSec, rep.NsPerOp, rep.AllocsPerOp)
	if *minSpeedup > 0 {
		sum, err := perf.GuardParallelSpeedup(rep, *minSpeedup)
		if sum != "" {
			fmt.Println(sum)
		}
		if err != nil {
			fail(err)
		}
	}
	if *guard != "" {
		if err := perf.Guard(*guard, rep, *guardRatio, *guardAllocs); err != nil {
			fail(err)
		}
	}
	if *smoke {
		return
	}

	f, err := perf.UpdateFile(*out, rep, *rebaseline)
	if err != nil {
		fail(err)
	}
	fmt.Printf("vs baseline: %.2fx events/s, %.2fx allocs/op\n",
		f.SpeedupEventsPerSec, f.AllocsPerOpRatio)
}

func parseWorkerList(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -sim-workers entry %q (want positive integers)", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// Command simbench measures the simulator's own wall-clock performance
// (events/sec, ns/op, allocs/op over the radosbench sweep) and maintains
// BENCH_sim.json: a pre-optimization baseline recorded once plus the
// current numbers and their ratios, so `make bench` tracks the perf
// trajectory from PR to PR.
//
// Usage:
//
//	go run ./cmd/simbench                 # update "current", compare to baseline
//	go run ./cmd/simbench -rebaseline     # overwrite the stored baseline too
//	go run ./cmd/simbench -smoke          # short sweep, no file written
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"doceph/internal/perf"
)

// File is the on-disk schema of BENCH_sim.json.
type File struct {
	// Baseline is the pre-optimization reference (recorded with
	// -rebaseline, then left alone so speedups stay comparable).
	Baseline *perf.Report `json:"baseline,omitempty"`
	// Current is the most recent run.
	Current *perf.Report `json:"current,omitempty"`

	// SpeedupEventsPerSec is Current/Baseline events/sec (higher is better).
	SpeedupEventsPerSec float64 `json:"speedup_events_per_sec,omitempty"`
	// AllocsPerOpRatio is Current/Baseline allocs/op (lower is better).
	AllocsPerOpRatio float64 `json:"allocs_per_op_ratio,omitempty"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_sim.json", "result file to maintain")
		rebaseline = flag.Bool("rebaseline", false, "record this run as the baseline")
		smoke      = flag.Bool("smoke", false, "short sweep, print only, no file written")
	)
	flag.Parse()

	sweep := perf.DefaultSweep()
	if *smoke {
		sweep = perf.SmokeSweep()
	}
	rep, err := perf.RunSweep(sweep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	for _, m := range rep.Scenarios {
		fmt.Printf("%-14s %8d ops  %12.0f events/s  %10.0f ns/op  %8.1f allocs/op\n",
			m.Name, m.Ops, m.EventsPerSec, m.NsPerOp, m.AllocsPerOp)
	}
	fmt.Printf("%-14s %21.0f events/s  %10.0f ns/op  %8.1f allocs/op\n",
		"TOTAL", rep.EventsPerSec, rep.NsPerOp, rep.AllocsPerOp)
	if *smoke {
		return
	}

	var f File
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: parse %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	f.Current = &rep
	if *rebaseline || f.Baseline == nil {
		f.Baseline = &rep
	}
	if f.Baseline.EventsPerSec > 0 {
		f.SpeedupEventsPerSec = f.Current.EventsPerSec / f.Baseline.EventsPerSec
	}
	if f.Baseline.AllocsPerOp > 0 {
		f.AllocsPerOpRatio = f.Current.AllocsPerOp / f.Baseline.AllocsPerOp
	}
	fmt.Printf("vs baseline: %.2fx events/s, %.2fx allocs/op\n",
		f.SpeedupEventsPerSec, f.AllocsPerOpRatio)

	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
}

module doceph

go 1.22

// Package doceph is the public facade of the DoCeph reproduction: a
// deterministic, discrete-event simulated Ceph cluster that can run either
// as the paper's Baseline (full Ceph on the host CPUs, SmartNIC in NIC
// mode) or as DoCeph (OSDs and messengers on BlueField-3-class DPU ARM
// cores, only BlueStore plus a thin RPC/DMA server left on the host).
//
// Quick start:
//
//	cl := doceph.NewCluster(doceph.ClusterConfig{Mode: doceph.DoCeph})
//	res, err := doceph.RunBench(cl, doceph.BenchConfig{
//		Threads: 16, ObjectBytes: 4 << 20,
//		Duration: 10 * doceph.Second, Warmup: doceph.Second,
//	})
//	fmt.Println(res, cl.HostCPUMerged().SingleCoreUtilization())
//
// The Experiments API (experiments.go) regenerates every table and figure
// of the paper's evaluation; see EXPERIMENTS.md for measured-vs-paper
// numbers.
package doceph

import (
	"doceph/internal/cluster"
	"doceph/internal/core"
	"doceph/internal/radosbench"
	"doceph/internal/sim"
)

// Deployment modes (paper §5.1).
const (
	// Baseline runs the full Ceph stack on the host CPUs.
	Baseline = cluster.Baseline
	// DoCeph offloads OSDs and messengers to the DPU.
	DoCeph = cluster.DoCeph
)

// Re-exported types forming the public API surface.
type (
	// Mode selects Baseline or DoCeph deployment.
	Mode = cluster.Mode
	// ClusterConfig describes the simulated testbed.
	ClusterConfig = cluster.Config
	// Cluster is an assembled testbed.
	Cluster = cluster.Cluster
	// StorageNode is one cluster node.
	StorageNode = cluster.StorageNode
	// BenchConfig describes a RADOS-bench-style workload.
	BenchConfig = radosbench.Config
	// BenchResult carries a workload's measurements.
	BenchResult = radosbench.Result
	// ClassStats carries per-op-class (read or write) metrics of a mixed
	// workload.
	ClassStats = radosbench.ClassStats
	// BatchConfig tunes the DPU data path's adaptive small-op batching
	// (off by default; see core.BatchConfig).
	BatchConfig = core.BatchConfig
	// Duration is virtual time in nanoseconds.
	Duration = sim.Duration
)

// Workload patterns.
const (
	// WriteWorkload is rados bench's write-only pattern.
	WriteWorkload = radosbench.Write
	// ReadWorkload is the read pattern (paper §5.5 / future work).
	ReadWorkload = radosbench.Read
	// MixedWorkload interleaves reads and writes per BenchConfig.ReadPercent.
	MixedWorkload = radosbench.Mixed
)

// Time units for configuring workloads.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Link rates for ClusterConfig.LinkBytesPerSec.
const (
	Link100G = cluster.Link100G
	Link1G   = cluster.Link1G
)

// NewCluster assembles a simulated testbed.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// DefaultBatchConfig returns the enabled batching defaults.
func DefaultBatchConfig() BatchConfig { return core.DefaultBatchConfig() }

// RunBench executes a closed-loop benchmark against cl's client and returns
// its measurements. If cfg.OnWarmupEnd is nil, the cluster's host-CPU
// accounting windows are reset at the warmup boundary so utilization
// numbers cover exactly the measured window.
func RunBench(cl *Cluster, cfg BenchConfig) (BenchResult, error) {
	if cfg.OnWarmupEnd == nil {
		cfg.OnWarmupEnd = cl.ResetHostStats
	}
	return radosbench.Run(cl.Env, cl.Client, cfg)
}

#!/bin/sh
# Coverage gate: fails if any gated package's statement coverage drops
# below its recorded floor. Floors were measured when the batching test
# layer landed (core 86.4%, doca 74.8%, osd 74.7%) and re-measured when the
# multi-queue transport landed (core 85.9%, doca 82.3%, osd 75.4%,
# messenger 79.8%, sim 84.5%, perf 91.3%) and again when the self-healing
# layer landed (osd 77.7%, faultinject 63.2%), and again when the
# partitioned parallel kernel landed (sim 88.0%, perf 91.5%), and again
# when the read path opened (rbd 89.3%, striper 85.7%, radosbench 78.2%),
# and again when the 128-OSD scale-out landed (cluster 89.5%, crush 97.0%),
# and again when the streaming data plane landed (cephmsg 85.1%, messenger
# 82.0%, osd 76.2%);
# each is set ~5 points below to absorb small refactors. Raise floors when
# coverage improves, never lower them to make a PR pass.
set -eu

fail=0
gate() {
    pkg=$1
    floor=$2
    out=$(go test -cover "$pkg" 2>&1) || { echo "$out"; exit 1; }
    pct=$(echo "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p' | head -n1)
    if [ -z "$pct" ]; then
        echo "covergate: no coverage reported for $pkg"
        fail=1
        return
    fi
    below=$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p < f) ? 1 : 0 }')
    if [ "$below" = 1 ]; then
        echo "covergate: $pkg coverage $pct% is below the $floor% floor"
        fail=1
    else
        echo "covergate: $pkg $pct% (floor $floor%)"
    fi
}

gate ./internal/core 81
gate ./internal/doca 77
gate ./internal/cephmsg 80
gate ./internal/osd 73
gate ./internal/faultinject 58
gate ./internal/messenger 75
gate ./internal/sim 83
gate ./internal/perf 85
gate ./internal/rbd 84
gate ./internal/striper 80
gate ./internal/radosbench 73
gate ./internal/cluster 84
gate ./internal/crush 92

exit $fail

package doceph

import (
	"fmt"
	"time"

	"doceph/internal/cluster"
	"doceph/internal/report"
)

// Partitioned scale-out API: the 32-OSD multi-rack cluster running on the
// conservative parallel event kernel.
type (
	// ScaleOutConfig shapes the partitioned multi-rack cluster.
	ScaleOutConfig = cluster.ScaleOutConfig
	// ScaleOut is an assembled partitioned cluster.
	ScaleOut = cluster.ScaleOut
	// ScaleOutResult is a run's deterministic aggregate.
	ScaleOutResult = cluster.ScaleOutResult
)

// NewScaleOut assembles a partitioned multi-rack cluster.
func NewScaleOut(cfg ScaleOutConfig) *ScaleOut { return cluster.NewScaleOut(cfg) }

// CrossRackLookahead is the model-derived lookahead bound for cross-rack
// links (see cluster.CrossRackLookahead).
func CrossRackLookahead(cfg ClusterConfig) Duration { return cluster.CrossRackLookahead(cfg) }

// ScaleOutOptions shapes the scale-out kernel experiment.
type ScaleOutOptions struct {
	// Pods x OSDsPerPod racks (defaults 8 x 4: the 32-OSD scenario).
	Pods       int
	OSDsPerPod int
	// Threads is the closed-loop client count per rack (default 4).
	Threads int
	// Duration/Warmup bound the workload (defaults 2s / 500ms).
	Duration Duration
	Warmup   Duration
	Seed     int64
	// Workers are the kernel worker counts to compare (default 1, 2, 4, 8).
	Workers []int
}

// ScaleOutRow is one kernel worker count of the scale-out experiment. The
// simulated columns (ops, MB/s, epochs) are identical on every row by the
// kernel's determinism contract — RunScaleOut fails if they are not; only
// the wall-clock columns may move with the worker count.
type ScaleOutRow struct {
	Workers      int
	Ops          int64
	MBps         float64 // simulated client throughput
	Epochs       int64   // root-monitor epochs driven by cross-rack beacons
	Rounds       uint64  // kernel barrier rounds
	Delivered    uint64  // cross-partition messages
	WallNs       int64
	EventsPerSec float64
	Speedup      float64 // events/s vs the workers=1 row
}

// RunScaleOut runs the partitioned scale-out scenario once per requested
// kernel worker count and compares wall-clock throughput. Any simulated
// field drifting across worker counts is an error, not a table footnote —
// determinism regardless of parallelism is the kernel's core contract.
func RunScaleOut(o ScaleOutOptions) ([]ScaleOutRow, error) {
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 8}
	}
	cfg := ScaleOutConfig{
		Pods:       o.Pods,
		OSDsPerPod: o.OSDsPerPod,
		Mode:       DoCeph,
		Seed:       o.Seed,
		Threads:    o.Threads,
		Duration:   o.Duration,
		Warmup:     o.Warmup,
	}
	var out []ScaleOutRow
	var first *ScaleOutResult
	for _, w := range o.Workers {
		so := NewScaleOut(cfg)
		start := time.Now()
		res, err := so.Run(w)
		wall := time.Since(start)
		so.Shutdown()
		if err != nil {
			return nil, fmt.Errorf("scale-out workers=%d: %w", w, err)
		}
		if first == nil {
			r := res
			first = &r
		} else if res.TotalOps != first.TotalOps || res.Events != first.Events ||
			res.Beacons != first.Beacons || res.Epochs != first.Epochs {
			return nil, fmt.Errorf(
				"scale-out determinism violation at workers=%d: ops=%d events=%d beacons=%d epochs=%d, workers=%d ran %d/%d/%d/%d",
				w, res.TotalOps, res.Events, res.Beacons, res.Epochs,
				o.Workers[0], first.TotalOps, first.Events, first.Beacons, first.Epochs)
		}
		row := ScaleOutRow{
			Workers:   w,
			Ops:       res.TotalOps,
			Epochs:    res.Epochs,
			Rounds:    res.Rounds,
			Delivered: res.Delivered,
			WallNs:    wall.Nanoseconds(),
		}
		dur := cfg.Duration
		if dur == 0 {
			dur = 2 * Second
		}
		row.MBps = float64(res.TotalBytes) / 1e6 / (float64(dur) / float64(Second))
		if wall > 0 {
			row.EventsPerSec = float64(res.Events) / wall.Seconds()
		}
		if base := out; len(base) > 0 && base[0].EventsPerSec > 0 {
			row.Speedup = row.EventsPerSec / base[0].EventsPerSec
		} else if len(out) == 0 {
			row.Speedup = 1
		}
		out = append(out, row)
	}
	return out, nil
}

// ScaleOutTable renders the scale-out kernel comparison.
func ScaleOutTable(rows []ScaleOutRow) *report.Table {
	t := &report.Table{
		Title: "Extension: partitioned parallel kernel, multi-rack scale-out",
		Header: []string{"kernel workers", "ops", "sim MB/s", "epochs",
			"barrier rounds", "xpart msgs", "wall ms", "events/s", "speedup"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Workers), fmt.Sprint(r.Ops), report.F2(r.MBps),
			fmt.Sprint(r.Epochs), fmt.Sprint(r.Rounds), fmt.Sprint(r.Delivered),
			fmt.Sprintf("%.1f", float64(r.WallNs)/1e6),
			fmt.Sprintf("%.0f", r.EventsPerSec), report.F2(r.Speedup))
	}
	t.AddNote("simulated columns are bit-identical across worker counts (enforced); only wall clock moves")
	t.AddNote("wall-clock speedup is bounded by physical cores; see DESIGN.md on the partitioned kernel")
	return t
}

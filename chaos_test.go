package doceph

import (
	"reflect"
	"testing"
)

// chaosOpts keeps the chaos runs CI-sized: the default plan scales its
// windows to the duration, so the shape is preserved.
func chaosOpts() ChaosOptions {
	return ChaosOptions{Duration: 30 * Second, Threads: 4, ObjectBytes: 256 << 10, Seed: 42}
}

// TestChaosRunCompletes is the headline robustness check: under the full
// default fault plan, both deployments finish the run with every op resolved
// (success or typed error — nothing hung past the driver's horizon) and
// every verified read matching the written payload.
func TestChaosRunCompletes(t *testing.T) {
	r, err := RunChaos(chaosOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ChaosModeResult{r.Baseline, r.DoCeph} {
		if m.Ops == 0 {
			t.Fatalf("%s: no ops issued", m.Mode)
		}
		if m.IntegrityChecked == 0 {
			t.Fatalf("%s: nothing verified", m.Mode)
		}
		if m.IntegrityOK != m.IntegrityChecked {
			t.Fatalf("%s: integrity %d/%d", m.Mode, m.IntegrityOK, m.IntegrityChecked)
		}
		if m.InjectedEvents == 0 {
			t.Fatalf("%s: fault plan injected nothing", m.Mode)
		}
		if m.DroppedFrames == 0 || m.SessionResets == 0 {
			t.Fatalf("%s: drop window had no effect (frames=%d resets=%d)",
				m.Mode, m.DroppedFrames, m.SessionResets)
		}
		if m.BitRotObjects == 0 {
			t.Fatalf("%s: bit-rot corrupted nothing", m.Mode)
		}
		if m.ScrubErrors == 0 {
			t.Fatalf("%s: scrub missed the bit-rot", m.Mode)
		}
	}
	// The DPU faults only exist in DoCeph mode.
	if r.DoCeph.DMAErrors == 0 {
		t.Fatal("doceph: DMA fault window injected no errors")
	}
	if r.Baseline.DMAErrors != 0 {
		t.Fatal("baseline: phantom DMA errors")
	}
}

// TestChaosDeterminism asserts the reproducibility contract: the same seed
// and the same plan produce byte-identical results across two full runs.
func TestChaosDeterminism(t *testing.T) {
	opts := ChaosOptions{Duration: 12 * Second, Threads: 4, ObjectBytes: 256 << 10, Seed: 7}
	a, err := RunChaos(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed + plan diverged:\nrun1: %+v\nrun2: %+v", a, b)
	}
}

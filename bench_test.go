package doceph

// One benchmark per table and figure of the paper's evaluation section.
// Each regenerates its experiment from a fresh simulated cluster and
// reports the headline quantities as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The runs use QuickOptions (8 s measured
// window instead of the paper's 60 s); cmd/docephbench without -quick runs
// the full-length methodology.

import (
	"sync"
	"testing"
)

// The size-sweep experiments (Figures 7-10, Table 3) share one sweep per
// bench binary invocation; recomputing it five times would only re-measure
// the same deterministic simulation.
var (
	sweepOnce sync.Once
	sweepRows []SizeComparison
	sweepErr  error
)

func sweep(b *testing.B) []SizeComparison {
	b.Helper()
	sweepOnce.Do(func() {
		sweepRows, sweepErr = RunSizeSweep(QuickOptions(), nil)
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepRows
}

var (
	profOnce sync.Once
	prof     MessengerProfileResult
	profErr  error
)

func profile(b *testing.B) MessengerProfileResult {
	b.Helper()
	profOnce.Do(func() {
		prof, profErr = RunMessengerProfile(QuickOptions())
	})
	if profErr != nil {
		b.Fatal(profErr)
	}
	return prof
}

func BenchmarkFig5_CPUBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := profile(b)
		b.ReportMetric(p.HundredG.MsgrShare*100, "msgr-share-%")
		b.ReportMetric(p.HundredG.SingleCoreUtil*100, "ceph-cpu-100G-%")
		b.ReportMetric(p.OneG.SingleCoreUtil*100, "ceph-cpu-1G-%")
	}
}

func BenchmarkFig6_ThroughputByLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := profile(b)
		b.ReportMetric(p.OneG.ThroughputMBps, "MBps-1G")
		b.ReportMetric(p.HundredG.ThroughputMBps, "MBps-100G")
	}
}

func BenchmarkTable2_ContextSwitches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := profile(b)
		ratio := 0.0
		if p.HundredG.ObjSwitches > 0 {
			ratio = float64(p.HundredG.MsgrSwitches) / float64(p.HundredG.ObjSwitches)
		}
		b.ReportMetric(ratio, "msgr/objstore-switch-ratio")
	}
}

func BenchmarkFig7_HostCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sweep(b)
		b.ReportMetric(rows[0].BaselineUtil*100, "baseline-1MB-%")
		b.ReportMetric(rows[0].DoCephUtil*100, "doceph-1MB-%")
		b.ReportMetric(rows[len(rows)-1].SavingPct, "saving-16MB-%")
	}
}

func BenchmarkFig8_Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sweep(b)
		b.ReportMetric(rows[0].BaselineLat.Seconds(), "baseline-1MB-s")
		b.ReportMetric(rows[0].DoCephLat.Seconds(), "doceph-1MB-s")
		b.ReportMetric(rows[len(rows)-1].DoCephLat.Seconds(), "doceph-16MB-s")
	}
}

func BenchmarkTable3_LatencyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sweep(b)
		b.ReportMetric(rows[0].Breakdown.DMAWait.Seconds(), "dmawait-1MB-s")
		b.ReportMetric(rows[0].Breakdown.HostWrite.Seconds(), "hostwrite-1MB-s")
		b.ReportMetric(rows[0].Breakdown.DMA.Seconds(), "dma-1MB-s")
	}
}

func BenchmarkFig9_NormalizedBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sweep(b)
		first, last := rows[0].Breakdown, rows[len(rows)-1].Breakdown
		b.ReportMetric(first.DMAWait.Seconds()/first.Total.Seconds()*100, "dmawait-share-1MB-%")
		b.ReportMetric(last.DMAWait.Seconds()/last.Total.Seconds()*100, "dmawait-share-16MB-%")
	}
}

func BenchmarkFig10_IOPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sweep(b)
		b.ReportMetric(rows[0].BaselineIOPS, "baseline-1MB-iops")
		b.ReportMetric(rows[0].DoCephIOPS, "doceph-1MB-iops")
		b.ReportMetric(rows[len(rows)-1].DoCephIOPS, "doceph-16MB-iops")
	}
}

func BenchmarkExtension_ReadPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunReadSweep(QuickOptions(), []int64{4 << 20})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].BaselineIOPS, "baseline-read-iops")
		b.ReportMetric(rows[0].DoCephIOPS, "doceph-read-iops")
	}
}

func BenchmarkAblation_DesignChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunAblations(QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Name {
			case "doceph (full design)":
				b.ReportMetric(r.AvgLatency.Seconds(), "full-lat-s")
			case "no pipelining":
				b.ReportMetric(r.AvgLatency.Seconds(), "nopipe-lat-s")
			case "no MR cache":
				b.ReportMetric(r.AvgLatency.Seconds(), "nomrcache-lat-s")
			}
		}
	}
}

// BenchmarkSimulatorOpsRate measures the simulator itself: virtual-seconds
// of DoCeph cluster time simulated per wall second at 4 MB load.
func BenchmarkSimulatorOpsRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl := NewCluster(ClusterConfig{Mode: DoCeph})
		res, err := RunBench(cl, BenchConfig{
			Threads: 16, ObjectBytes: 4 << 20,
			Duration: 3 * Second, Warmup: Second,
		})
		cl.Shutdown()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Ops), "sim-ops")
	}
}

func BenchmarkStability_PerSecondThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := RunStability(QuickOptions(), 4<<20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Baseline.StddevPct, "baseline-cv-%")
		b.ReportMetric(r.DoCeph.StddevPct, "doceph-cv-%")
	}
}

func BenchmarkExtension_ScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunScaleSweep(QuickOptions(), []int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].SavingPct, "saving-at-scale-%")
		b.ReportMetric(rows[len(rows)-1].DoCephMBps, "doceph-MBps-at-scale")
	}
}

package doceph

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"doceph/internal/bluestore"
	"doceph/internal/core"
	"doceph/internal/messenger"
	"doceph/internal/osd"
	"doceph/internal/report"
	"doceph/internal/sim"
)

// ExpOptions controls how long each experiment runs. The paper uses 60 s
// runs; Quick options keep CI fast while preserving the shapes.
type ExpOptions struct {
	Duration Duration
	Warmup   Duration
	Threads  int
	Seed     int64
	// Batch sets the batching knobs for sweep arms that run with batching
	// on (RunSmallOpsSweep's third arm). Enable is forced on there; zero
	// fields take DefaultBatchConfig values.
	Batch BatchConfig
	// DMAQueues sets the DPU DMA engine queue count on every DoCeph arm
	// (0 keeps the default serial engine, queues=1).
	DMAQueues int
	// OpShards sets the OSD op-queue shard count on every arm (0 keeps the
	// default single queue).
	OpShards int
	// MsgrLanes sets the per-connection messenger lane count (multi-QP
	// transport). 0 follows DMAQueues: a multi-queue DoCeph deployment
	// provisions one messenger lane per DMA queue, the QP-per-queue model.
	MsgrLanes int
}

// lanes resolves the effective messenger lane count.
func (o ExpOptions) lanes() int {
	if o.MsgrLanes > 0 {
		return o.MsgrLanes
	}
	return o.DMAQueues
}

// FullOptions mirrors the paper's methodology (60 s runs, 16 clients).
func FullOptions() ExpOptions {
	return ExpOptions{Duration: 60 * Second, Warmup: 5 * Second, Threads: 16, Seed: 42}
}

// QuickOptions is a fast variant for tests and `go test -bench`.
func QuickOptions() ExpOptions {
	return ExpOptions{Duration: 8 * Second, Warmup: 2 * Second, Threads: 16, Seed: 42}
}

func (o ExpOptions) withDefaults() ExpOptions {
	d := FullOptions()
	if o.Duration == 0 {
		o.Duration = d.Duration
	}
	if o.Warmup == 0 {
		o.Warmup = d.Warmup
	}
	if o.Threads == 0 {
		o.Threads = d.Threads
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// runResult bundles everything one benchmark run yields.
type runResult struct {
	bench     BenchResult
	hostUtil  float64 // single-core normalization (Fig. 5 right axis)
	msgrShare float64
	objShare  float64
	osdShare  float64
	msgrSw    int64
	objSw     int64
	breakdown core.Breakdown
	// Batching counters, summed over nodes (zero on Baseline / unbatched).
	batchedTxns  int64
	batchFlushes int64
	// Upstream DMA engine accounting, summed over nodes (zero on Baseline):
	// engBusy is the total queue service time, engQueues the per-node queue
	// count, engNodes the number of bridges — together they give the engine
	// occupancy over a run window.
	engBusy   sim.Duration
	engQueues int
	engNodes  int
	// Streaming counters: streamed client writes summed over OSDs, and the
	// max per-node DPU staging high-water mark (zero on Baseline).
	streamWrites int64
	peakStaging  int64
}

// engineOccupancy is the fraction of total queue capacity the upstream
// engines spent servicing transfers over window.
func (r runResult) engineOccupancy(window sim.Duration) float64 {
	den := float64(r.engQueues) * float64(r.engNodes) * float64(window)
	if den <= 0 {
		return 0
	}
	return float64(r.engBusy) / den
}

// runWorkload builds a fresh cluster and executes one benchmark on it.
func runWorkload(mode Mode, linkBps float64, size int64, op BenchConfig, opts ExpOptions) (runResult, error) {
	return runWorkloadCfg(mode, linkBps, size, op, opts, nil)
}

// runWorkloadCfg is runWorkload with a cluster-config mutator, for arms that
// flip mechanism knobs (batching, channels, ...) on an otherwise identical
// testbed.
func runWorkloadCfg(mode Mode, linkBps float64, size int64, op BenchConfig,
	opts ExpOptions, mut func(*ClusterConfig)) (runResult, error) {
	cfg := ClusterConfig{Mode: mode, LinkBytesPerSec: linkBps, Seed: opts.Seed}
	cfg.Bridge.Engine.Queues = opts.DMAQueues
	cfg.OSD.OpShards = opts.OpShards
	cfg.Messenger.Lanes = opts.lanes()
	if mut != nil {
		mut(&cfg)
	}
	cl := NewCluster(cfg)
	defer cl.Shutdown()
	op.Threads = opts.Threads
	op.ObjectBytes = size
	op.Duration = opts.Duration
	op.Warmup = opts.Warmup
	op.OnWarmupEnd = cl.ResetHostStats
	bench, err := RunBench(cl, op)
	if err != nil {
		return runResult{}, err
	}
	m := cl.HostCPUMerged()
	r := runResult{
		bench:     bench,
		hostUtil:  m.SingleCoreUtilization(),
		msgrShare: m.ShareOf(messenger.ThreadCat),
		objShare:  m.ShareOf(bluestore.ThreadCat),
		osdShare:  m.ShareOf(osd.ThreadCat),
		msgrSw:    m.SwitchesByCat[messenger.ThreadCat],
		objSw:     m.SwitchesByCat[bluestore.ThreadCat],
		breakdown: cl.ProxyBreakdownMerged(),
	}
	for _, n := range cl.Nodes {
		r.streamWrites += n.OSD.Stats().StreamWrites
		if n.Bridge != nil {
			st := n.Bridge.Proxy.Stats()
			r.batchedTxns += st.BatchedTxns
			r.batchFlushes += st.BatchFlushes
			if st.PeakStagingBytes > r.peakStaging {
				r.peakStaging = st.PeakStagingBytes
			}
			r.engBusy += n.Bridge.EngUp.Stats().Busy
			r.engQueues = n.Bridge.EngUp.NumQueues()
			r.engNodes++
		}
	}
	return r, nil
}

// runParallel executes n independent simulation cells on up to GOMAXPROCS
// OS goroutines. Every cell builds its own cluster (its own sim.Env and
// seeded RNG), so results are bit-identical to the sequential order no
// matter how the host scheduler interleaves them; callers store results by
// index, keeping output ordering deterministic. The lowest-index error is
// returned so failure reporting is deterministic too.
func runParallel(n int, cell func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = cell(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Figure 5 + Figure 6 + Table 2: baseline messenger profile at 1G vs 100G.

// LinkProfile is one bar group of Figure 5 plus the matching Figure 6 and
// Table 2 columns.
type LinkProfile struct {
	LinkName       string
	MsgrShare      float64
	ObjShare       float64
	OSDShare       float64
	SingleCoreUtil float64
	ThroughputMBps float64
	MsgrSwitches   int64
	ObjSwitches    int64
}

// MessengerProfileResult holds both link configurations.
type MessengerProfileResult struct {
	OneG     LinkProfile
	HundredG LinkProfile
}

// RunMessengerProfile reproduces the §5.2 methodology: baseline cluster,
// 4 MB writes, 1 Gbps vs 100 Gbps, measuring per-component CPU shares
// (Fig. 5), throughput (Fig. 6) and context switches (Table 2).
func RunMessengerProfile(opts ExpOptions) (MessengerProfileResult, error) {
	opts = opts.withDefaults()
	var out MessengerProfileResult
	links := []struct {
		name string
		bps  float64
		dst  *LinkProfile
	}{
		{"1Gbps", Link1G, &out.OneG},
		{"100Gbps", Link100G, &out.HundredG},
	}
	err := runParallel(len(links), func(i int) error {
		link := links[i]
		r, err := runWorkload(Baseline, link.bps, 4<<20, BenchConfig{}, opts)
		if err != nil {
			return fmt.Errorf("profile %s: %w", link.name, err)
		}
		*link.dst = LinkProfile{
			LinkName:       link.name,
			MsgrShare:      r.msgrShare,
			ObjShare:       r.objShare,
			OSDShare:       r.osdShare,
			SingleCoreUtil: r.hostUtil,
			ThroughputMBps: r.bench.ThroughputBps() / 1e6,
			MsgrSwitches:   r.msgrSw,
			ObjSwitches:    r.objSw,
		}
		return nil
	})
	return out, err
}

// Fig5Table renders the CPU-share breakdown (paper: messenger ~81%/82.5%,
// total 24% -> 70% of one core).
func (r MessengerProfileResult) Fig5Table() *report.Table {
	t := &report.Table{
		Title:  "Figure 5: CPU usage breakdown by component (Baseline, 4MB writes)",
		Header: []string{"link", "Messenger", "ObjectStore", "OSD threads", "total Ceph CPU (1-core norm)"},
	}
	for _, p := range []LinkProfile{r.OneG, r.HundredG} {
		t.AddRow(p.LinkName, report.Pct(p.MsgrShare), report.Pct(p.ObjShare),
			report.Pct(p.OSDShare), report.Pct(p.SingleCoreUtil))
	}
	t.AddNote("paper: Messenger 81.05%% (1G) / 82.48%% (100G); total 24%% -> 70.08%%")
	return t
}

// Fig6Table renders throughput under both links.
func (r MessengerProfileResult) Fig6Table() *report.Table {
	t := &report.Table{
		Title:  "Figure 6: Throughput under 1Gbps vs 100Gbps (Baseline, 4MB writes)",
		Header: []string{"link", "throughput MB/s"},
	}
	for _, p := range []LinkProfile{r.OneG, r.HundredG} {
		t.AddRow(p.LinkName, report.F2(p.ThroughputMBps))
	}
	t.AddNote("paper shape: 1G link-bound (~110 MB/s), 100G disk-bound (~470 MB/s)")
	return t
}

// Table2 renders the context-switch comparison (paper: 7475 vs 751, 9.95x).
func (r MessengerProfileResult) Table2() *report.Table {
	t := &report.Table{
		Title:  "Table 2: Context switches, Messenger vs ObjectStore (Baseline, 100Gbps)",
		Header: []string{"component", "context switches", "ratio"},
	}
	p := r.HundredG
	ratio := 0.0
	if p.ObjSwitches > 0 {
		ratio = float64(p.MsgrSwitches) / float64(p.ObjSwitches)
	}
	t.AddRow("Messenger", fmt.Sprint(p.MsgrSwitches), report.F2(ratio)+"x")
	t.AddRow("ObjectStore", fmt.Sprint(p.ObjSwitches), "1x")
	t.AddNote("paper: 7475 vs 751 (9.95x)")
	return t
}

// ---------------------------------------------------------------------------
// Figures 7, 8, 10 and Table 3 / Figure 9: baseline vs DoCeph size sweep.

// BreakdownRow is Table 3's per-size phase decomposition.
type BreakdownRow struct {
	HostWrite sim.Duration
	DMA       sim.Duration
	DMAWait   sim.Duration
	Others    sim.Duration
	Total     sim.Duration
}

// SizeComparison is one request-size column of Figures 7/8/10.
type SizeComparison struct {
	SizeBytes    int64
	BaselineUtil float64
	DoCephUtil   float64
	SavingPct    float64
	BaselineLat  sim.Duration
	DoCephLat    sim.Duration
	BaselineIOPS float64
	DoCephIOPS   float64
	Breakdown    BreakdownRow
}

// PaperSizes are the request sizes of §5.1.
var PaperSizes = []int64{1 << 20, 4 << 20, 8 << 20, 16 << 20}

// RunSizeSweep reproduces the §5.3/§5.4 comparison across request sizes for
// both deployments.
func RunSizeSweep(opts ExpOptions, sizes []int64) ([]SizeComparison, error) {
	opts = opts.withDefaults()
	if len(sizes) == 0 {
		sizes = PaperSizes
	}
	// Flatten the (size x deployment) grid into independent parallel cells.
	cells := make([]runResult, 2*len(sizes))
	err := runParallel(len(cells), func(i int) error {
		size, arm := sizes[i/2], i%2
		mode, name := Baseline, "baseline"
		if arm == 1 {
			mode, name = DoCeph, "doceph"
		}
		r, err := runWorkload(mode, Link100G, size, BenchConfig{}, opts)
		if err != nil {
			return fmt.Errorf("%s %dMB: %w", name, size>>20, err)
		}
		cells[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []SizeComparison
	for si, size := range sizes {
		base, dc := cells[2*si], cells[2*si+1]
		sc := SizeComparison{
			SizeBytes:    size,
			BaselineUtil: base.hostUtil,
			DoCephUtil:   dc.hostUtil,
			BaselineLat:  base.bench.AvgLatency,
			DoCephLat:    dc.bench.AvgLatency,
			BaselineIOPS: base.bench.IOPS(),
			DoCephIOPS:   dc.bench.IOPS(),
		}
		if sc.BaselineUtil > 0 {
			sc.SavingPct = (1 - sc.DoCephUtil/sc.BaselineUtil) * 100
		}
		hw, dma, wait := dc.breakdown.Avg()
		total := dc.bench.AvgLatency
		others := total - hw - dma - wait
		if others < 0 {
			others = 0
		}
		sc.Breakdown = BreakdownRow{HostWrite: hw, DMA: dma, DMAWait: wait,
			Others: others, Total: total}
		out = append(out, sc)
	}
	return out, nil
}

// Fig7Table renders host CPU utilization per size (paper: 94.2/70.1/68.9/
// 67.2% baseline vs 5.5/5.75/5.53/5.39% DoCeph).
func Fig7Table(rows []SizeComparison) *report.Table {
	t := &report.Table{
		Title:  "Figure 7: Host CPU usage, Baseline vs DoCeph (1-core norm)",
		Header: []string{"size", "Baseline", "DoCeph", "saving"},
	}
	for _, r := range rows {
		t.AddRow(report.MB(r.SizeBytes), report.Pct(r.BaselineUtil),
			report.Pct(r.DoCephUtil), fmt.Sprintf("%.1f%%", r.SavingPct))
	}
	t.AddNote("paper: baseline 94.2->67.2%%, DoCeph flat 5.4-5.8%%, savings 91.8-94.2%%")
	return t
}

// Fig8Table renders average latency per size.
func Fig8Table(rows []SizeComparison) *report.Table {
	t := &report.Table{
		Title:  "Figure 8: Average write latency (s), Baseline vs DoCeph",
		Header: []string{"size", "Baseline", "DoCeph", "overhead"},
	}
	for _, r := range rows {
		over := 0.0
		if r.BaselineLat > 0 {
			over = (r.DoCephLat.Seconds()/r.BaselineLat.Seconds() - 1) * 100
		}
		t.AddRow(report.MB(r.SizeBytes), report.F3(r.BaselineLat.Seconds()),
			report.F3(r.DoCephLat.Seconds()), fmt.Sprintf("+%.0f%%", over))
	}
	t.AddNote("paper: 0.03 vs 0.05 s at 1MB (+67%%) narrowing to 0.54 vs 0.57 s at 16MB (+6%%)")
	return t
}

// Table3 renders DoCeph's latency decomposition.
func Table3(rows []SizeComparison) *report.Table {
	t := &report.Table{
		Title:  "Table 3: DoCeph average latency breakdown (s)",
		Header: []string{"phase", "1MB", "4MB", "8MB", "16MB"},
	}
	get := func(f func(BreakdownRow) sim.Duration) []string {
		cells := make([]string, 0, len(rows))
		for _, r := range rows {
			cells = append(cells, report.F4(f(r.Breakdown).Seconds()))
		}
		return cells
	}
	t.AddRow(append([]string{"Host write"}, get(func(b BreakdownRow) sim.Duration { return b.HostWrite })...)...)
	t.AddRow(append([]string{"DMA"}, get(func(b BreakdownRow) sim.Duration { return b.DMA })...)...)
	t.AddRow(append([]string{"DMA-wait"}, get(func(b BreakdownRow) sim.Duration { return b.DMAWait })...)...)
	t.AddRow(append([]string{"Others"}, get(func(b BreakdownRow) sim.Duration { return b.Others })...)...)
	t.AddRow(append([]string{"Total Avg.Latency"}, get(func(b BreakdownRow) sim.Duration { return b.Total })...)...)
	t.AddNote("paper totals: 0.05 / 0.14 / 0.30 / 0.57 s; DMA-wait share 44.8%% -> 11.9%%")
	return t
}

// Fig9Table renders the normalized breakdown.
func Fig9Table(rows []SizeComparison) *report.Table {
	t := &report.Table{
		Title:  "Figure 9: Normalized latency breakdown (share of total)",
		Header: []string{"size", "Host write", "DMA", "DMA-wait", "Others"},
	}
	for _, r := range rows {
		b := r.Breakdown
		tot := b.Total.Seconds()
		if tot <= 0 {
			continue
		}
		t.AddRow(report.MB(r.SizeBytes),
			report.Pct(b.HostWrite.Seconds()/tot),
			report.Pct(b.DMA.Seconds()/tot),
			report.Pct(b.DMAWait.Seconds()/tot),
			report.Pct(b.Others.Seconds()/tot))
	}
	t.AddNote("paper: DMA-wait falls from 44.8%% at 1MB to 11.9%% at 16MB (pipelining)")
	return t
}

// Fig10Table renders IOPS per size.
func Fig10Table(rows []SizeComparison) *report.Table {
	t := &report.Table{
		Title:  "Figure 10: Average throughput (IOPS), Baseline vs DoCeph",
		Header: []string{"size", "Baseline", "DoCeph", "gap"},
	}
	for _, r := range rows {
		gap := 0.0
		if r.BaselineIOPS > 0 {
			gap = (1 - r.DoCephIOPS/r.BaselineIOPS) * 100
		}
		t.AddRow(report.MB(r.SizeBytes), report.F2(r.BaselineIOPS),
			report.F2(r.DoCephIOPS), fmt.Sprintf("-%.0f%%", gap))
	}
	t.AddNote("paper: 435/304 at 1MB (-30%%) narrowing to 28/27 at 16MB (-4%%)")
	return t
}

// ---------------------------------------------------------------------------
// Extension: small-op IOPS sweep with adaptive batching (Figure 10's gap at
// the small end, and what coalescing DMA setup buys back).

// SmallOpComparison is one request-size row of the small-op sweep: Baseline
// against DoCeph with batching off and on.
type SmallOpComparison struct {
	SizeBytes    int64
	BaselineIOPS float64
	DoCephIOPS   float64 // batching off
	BatchedIOPS  float64 // batching on
	BatchGainPct float64 // batched vs unbatched DoCeph
	BaselineUtil float64
	DoCephUtil   float64
	BatchedUtil  float64
	BatchedTxns  int64
	BatchFlushes int64
	AvgBatchSize float64
	BaselineLat  sim.Duration
	DoCephLat    sim.Duration
	BatchedLat   sim.Duration
}

// SmallOpSizes are the request sizes of the small-op sweep, below the
// paper's 1 MB floor where per-op DMA setup dominates.
var SmallOpSizes = []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10}

// RunSmallOpsSweep measures IOPS for small requests under three arms:
// Baseline, DoCeph with per-op DMA (the Figure 10 regime, where ~1.6 ms of
// setup per transfer caps small-op IOPS), and DoCeph with adaptive batching
// (opts.Batch, Enable forced on), which amortizes one setup across a frame
// of coalesced ops.
func RunSmallOpsSweep(opts ExpOptions, sizes []int64) ([]SmallOpComparison, error) {
	opts = opts.withDefaults()
	if len(sizes) == 0 {
		sizes = SmallOpSizes
	}
	// Three arms per size, each an independent parallel cell.
	cells := make([]runResult, 3*len(sizes))
	err := runParallel(len(cells), func(i int) error {
		size, arm := sizes[i/3], i%3
		var r runResult
		var err error
		switch arm {
		case 0:
			r, err = runWorkload(Baseline, Link100G, size, BenchConfig{}, opts)
		case 1:
			r, err = runWorkload(DoCeph, Link100G, size, BenchConfig{}, opts)
		default:
			r, err = runWorkloadCfg(DoCeph, Link100G, size, BenchConfig{}, opts,
				func(c *ClusterConfig) {
					c.Bridge.Batch = opts.Batch
					c.Bridge.Batch.Enable = true
				})
		}
		if err != nil {
			return fmt.Errorf("smallops arm %d %dKB: %w", arm, size>>10, err)
		}
		cells[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []SmallOpComparison
	for si, size := range sizes {
		base, plain, batched := cells[3*si], cells[3*si+1], cells[3*si+2]
		sc := SmallOpComparison{
			SizeBytes:    size,
			BaselineIOPS: base.bench.IOPS(),
			DoCephIOPS:   plain.bench.IOPS(),
			BatchedIOPS:  batched.bench.IOPS(),
			BaselineUtil: base.hostUtil,
			DoCephUtil:   plain.hostUtil,
			BatchedUtil:  batched.hostUtil,
			BatchedTxns:  batched.batchedTxns,
			BatchFlushes: batched.batchFlushes,
			BaselineLat:  base.bench.AvgLatency,
			DoCephLat:    plain.bench.AvgLatency,
			BatchedLat:   batched.bench.AvgLatency,
		}
		if sc.DoCephIOPS > 0 {
			sc.BatchGainPct = (sc.BatchedIOPS/sc.DoCephIOPS - 1) * 100
		}
		if sc.BatchFlushes > 0 {
			sc.AvgBatchSize = float64(sc.BatchedTxns) / float64(sc.BatchFlushes)
		}
		out = append(out, sc)
	}
	return out, nil
}

// SmallOpsTable renders the small-op sweep.
func SmallOpsTable(rows []SmallOpComparison) *report.Table {
	t := &report.Table{
		Title: "Small-op sweep: IOPS, Baseline vs DoCeph vs DoCeph+batching",
		Header: []string{"size", "Baseline IOPS", "DoCeph IOPS", "batched IOPS",
			"batch gain", "avg batch", "Baseline CPU", "DoCeph CPU", "batched CPU"},
	}
	for _, r := range rows {
		t.AddRow(report.KB(r.SizeBytes), report.F2(r.BaselineIOPS),
			report.F2(r.DoCephIOPS), report.F2(r.BatchedIOPS),
			fmt.Sprintf("%+.0f%%", r.BatchGainPct), report.F2(r.AvgBatchSize),
			report.Pct(r.BaselineUtil), report.Pct(r.DoCephUtil),
			report.Pct(r.BatchedUtil))
	}
	t.AddNote("per-op DMA setup (~1.6ms) caps unbatched DoCeph IOPS at small sizes (Fig. 10 gap); batching amortizes one setup+doorbell across a coalesced frame")
	return t
}

// ---------------------------------------------------------------------------
// Extension: read path (§5.5, the paper's future work).

// ReadComparison is one row of the read-path extension experiment.
type ReadComparison struct {
	SizeBytes    int64
	BaselineLat  sim.Duration
	DoCephLat    sim.Duration
	BaselineIOPS float64
	DoCephIOPS   float64
}

// RunReadSweep measures the symmetric read path against the baseline.
func RunReadSweep(opts ExpOptions, sizes []int64) ([]ReadComparison, error) {
	opts = opts.withDefaults()
	if len(sizes) == 0 {
		sizes = PaperSizes
	}
	cells := make([]runResult, 2*len(sizes))
	err := runParallel(len(cells), func(i int) error {
		size, arm := sizes[i/2], i%2
		mode, name := Baseline, "baseline"
		if arm == 1 {
			mode, name = DoCeph, "doceph"
		}
		cfg := BenchConfig{Op: ReadWorkload, PrepopulateObjects: opts.Threads * 4}
		r, err := runWorkload(mode, Link100G, size, cfg, opts)
		if err != nil {
			return fmt.Errorf("%s read %dMB: %w", name, size>>20, err)
		}
		cells[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []ReadComparison
	for si, size := range sizes {
		base, dc := cells[2*si], cells[2*si+1]
		out = append(out, ReadComparison{
			SizeBytes:    size,
			BaselineLat:  base.bench.AvgLatency,
			DoCephLat:    dc.bench.AvgLatency,
			BaselineIOPS: base.bench.IOPS(),
			DoCephIOPS:   dc.bench.IOPS(),
		})
	}
	return out, nil
}

// ReadTable renders the read extension results.
func ReadTable(rows []ReadComparison) *report.Table {
	t := &report.Table{
		Title:  "Extension (paper §5.5): Read path, Baseline vs DoCeph",
		Header: []string{"size", "Baseline lat (s)", "DoCeph lat (s)", "Baseline IOPS", "DoCeph IOPS"},
	}
	for _, r := range rows {
		t.AddRow(report.MB(r.SizeBytes),
			report.F3(r.BaselineLat.Seconds()), report.F3(r.DoCephLat.Seconds()),
			report.F2(r.BaselineIOPS), report.F2(r.DoCephIOPS))
	}
	t.AddNote("paper predicts convergence at large sizes; reads avoid replication coordination")
	return t
}

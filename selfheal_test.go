package doceph

import (
	"fmt"
	"reflect"
	"testing"
)

// selfHealOpts keeps the runs CI-sized; the plan and the breaker clock both
// scale with the duration, so the open -> half-open -> closed arc still fits.
func selfHealOpts() SelfHealOptions {
	return SelfHealOptions{Duration: 30 * Second, Threads: 4, ObjectBytes: 256 << 10, Seed: 42}
}

// TestSelfHealRunCompletes is the headline self-healing check: through an
// OSD crash and a sustained DPU DMA fault, both deployments keep serving
// writes with zero integrity violations; DoCeph's breaker must trip to the
// host path and re-enroll DMA by run end, degraded writes must flow (and the
// ledger heal), and the crash-triggered backfill must complete under QoS.
func TestSelfHealRunCompletes(t *testing.T) {
	r, err := RunSelfHeal(selfHealOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []SelfHealModeResult{r.Baseline, r.DoCeph} {
		if m.Ops == 0 {
			t.Fatalf("%s: no ops issued", m.Mode)
		}
		if m.IntegrityChecked == 0 {
			t.Fatalf("%s: nothing verified", m.Mode)
		}
		if m.IntegrityOK != m.IntegrityChecked {
			t.Fatalf("%s: integrity violations: %d/%d reads matched",
				m.Mode, m.IntegrityOK, m.IntegrityChecked)
		}
		// The crash window must have produced degraded writes (min_size=1
		// keeps them flowing) and the rejoin must have healed the ledger
		// and backfilled under the QoS knobs.
		if m.DegradedWrites == 0 {
			t.Errorf("%s: crash window produced no degraded writes", m.Mode)
		}
		if m.DegradedPGsHealed == 0 {
			t.Errorf("%s: degraded ledger never healed", m.Mode)
		}
		if m.ObjectsRecovered == 0 || m.PGsBackfilled == 0 {
			t.Errorf("%s: no recovery happened (objects=%d pgs=%d)",
				m.Mode, m.ObjectsRecovered, m.PGsBackfilled)
		}
		if m.CleanMBps <= 0 {
			t.Errorf("%s: no clean throughput measured", m.Mode)
		}
	}
	// Baseline has no DPU: the DMA fault is a no-op there and there is no
	// breaker to trip.
	if r.Baseline.BreakerOpens != 0 || r.Baseline.FallbackTxns != 0 {
		t.Errorf("Baseline reported breaker activity: opens=%d fallback=%d",
			r.Baseline.BreakerOpens, r.Baseline.FallbackTxns)
	}
	// DoCeph must complete the full failover arc: DMA errors observed, the
	// breaker opened, traffic moved to the host path, probes succeeded once
	// the fault cleared, and the breaker closed again.
	d := r.DoCeph
	if d.DMAErrors == 0 {
		t.Error("DoCeph: DMA fault window injected no errors")
	}
	if d.BreakerOpens == 0 {
		t.Error("DoCeph: breaker never opened under a total DMA fault")
	}
	if d.FallbackTxns == 0 {
		t.Error("DoCeph: no transactions failed over to the host path")
	}
	if d.ProbeSuccesses == 0 {
		t.Error("DoCeph: no probe ever succeeded after the fault cleared")
	}
	if d.BreakerCloses == 0 || d.BreakerFinal != "closed" {
		t.Errorf("DoCeph: breaker did not re-close (closes=%d final=%q)",
			d.BreakerCloses, d.BreakerFinal)
	}
	if d.DataPlaneTxns == 0 {
		t.Error("DoCeph: DMA path never used")
	}
}

// TestSelfHealRecoveryQoSProtectsForeground is the client-I/O-aware
// throttling bound: after the crashed OSD rejoins, the backfill must not
// starve foreground writes. With QoS on, every backfill-phase second keeps a
// healthy fraction of clean throughput; with QoS off the same schedule
// starves the clients (measured ~2% of clean), which is what the knobs fix.
func TestSelfHealRecoveryQoSProtectsForeground(t *testing.T) {
	// Crash osd.1 at 3 s for 10.5 s: rejoin at 13.5 s starts the backfill,
	// so seconds 14-17 are the contended recovery phase.
	plan := FaultPlan{Name: "crash-only", Events: []FaultEvent{
		{At: 3 * Second, Duration: 10500 * Millisecond, Kind: FaultOSDCrash, OSD: 1},
	}}
	backfillMin := func(r SelfHealModeResult) float64 {
		min := -1.0
		for sec := 14; sec < 18 && sec < len(r.MBps); sec++ {
			if min < 0 || r.MBps[sec] < min {
				min = r.MBps[sec]
			}
		}
		return min
	}
	run := func(qosOff bool) SelfHealModeResult {
		opts := selfHealOpts()
		// A deliberately tight budget so the bucket saturates under this
		// small 4-thread workload and pacing provably engages.
		opts.RecoveryBps = 8e6
		opts.DisableQoS = qosOff
		r, err := runSelfHealMode(DoCeph, opts.withDefaults(), plan)
		if err != nil {
			t.Fatal(err)
		}
		if r.IntegrityOK != r.IntegrityChecked {
			t.Fatalf("qosOff=%v: integrity violations: %d/%d", qosOff, r.IntegrityOK, r.IntegrityChecked)
		}
		return r
	}
	on, off := run(false), run(true)

	if on.RecoveryThrottle == 0 && on.RecoveryBackoffs == 0 {
		t.Error("QoS on but neither pacing nor backoff ever engaged")
	}
	if off.RecoveryThrottle != 0 || off.RecoveryBackoffs != 0 {
		t.Errorf("QoS off but throttling engaged (throttle=%v backoffs=%d)",
			off.RecoveryThrottle, off.RecoveryBackoffs)
	}
	onMin, offMin := backfillMin(on), backfillMin(off)
	if onMin < 0.25*on.CleanMBps {
		t.Errorf("QoS failed its bound: worst backfill-phase second %.1f MB/s < 25%% of clean %.1f MB/s",
			onMin, on.CleanMBps)
	}
	if onMin < 5*offMin {
		t.Errorf("QoS made no difference: backfill-phase floor %.1f MB/s (on) vs %.1f MB/s (off)",
			onMin, offMin)
	}
	if on.RecoverySeconds < 0 {
		t.Error("throughput never recovered to 80% of clean after the crash window")
	}
}

// TestSelfHealDeterminism: the full experiment is a pure function of
// (options, plan) — run twice across a spread of seeds, every counter and
// the whole per-second throughput series must match bit-for-bit.
func TestSelfHealDeterminism(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 42}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			opts := SelfHealOptions{Duration: 12 * Second, Threads: 4, ObjectBytes: 256 << 10, Seed: seed}
			a, err := RunSelfHeal(opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunSelfHeal(opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("self-heal run is not deterministic for seed %d:\nfirst:  %+v\nsecond: %+v", seed, a, b)
			}
		})
	}
}

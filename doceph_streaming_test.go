package doceph

import (
	"fmt"
	"testing"

	"doceph/internal/cluster"
	"doceph/internal/radosbench"
	"doceph/internal/sim"
	"doceph/internal/trace"
)

// The metamorphic property of the streaming data plane: like batching, it
// is a pure transport optimization. For a fixed workload, turning streaming
// on may change WHEN bytes move (chunk pipelining vs store-and-forward) but
// never WHAT is stored or replied — every object byte-identical, every
// reply identical, the trace structurally sound. The suite spans the bypass
// boundary (2MB == one chunk, never streamed) and two streamed sizes, under
// both deployments.

func withStreaming(c *cluster.Config) { c.Messenger.Stream.Enable = true }

func TestMetamorphicStreamingPreservesSemantics(t *testing.T) {
	sizes := []int64{2 << 20, 4 << 20, 8 << 20}
	for _, mode := range []cluster.Mode{cluster.Baseline, cluster.DoCeph} {
		for _, size := range sizes {
			mode, size := mode, size
			t.Run(fmt.Sprintf("%v_%dKB", mode, size>>10), func(t *testing.T) {
				t.Parallel()
				off := runMetamorphic(t, mode, size, false)
				on := runMetamorphic(t, mode, size, false, withStreaming)

				// Reply sets: same op count, same ghost-read error.
				if off.ops != on.ops {
					t.Errorf("op count changed: %d vs %d", off.ops, on.ops)
				}
				if off.ghostErr == "" || off.ghostErr != on.ghostErr {
					t.Errorf("ghost-read error changed: %q vs %q", off.ghostErr, on.ghostErr)
				}

				// Stored objects byte-identical between arms AND equal to the
				// submitted payload.
				want := radosbench.Payload(size)
				if len(on.objCRC) != metaThreads*metaOps || len(off.objCRC) != len(on.objCRC) {
					t.Fatalf("object sets differ: %d vs %d", len(off.objCRC), len(on.objCRC))
				}
				for obj, crc := range off.objCRC {
					if on.objCRC[obj] != crc {
						t.Errorf("%s: stored bytes changed with streaming: %08x vs %08x",
							obj, crc, on.objCRC[obj])
					}
					if crc != want.CRC32C() || int64(off.objLen[obj]) != size {
						t.Errorf("%s: stored object corrupt (len %d, crc %08x)",
							obj, off.objLen[obj], crc)
					}
				}

				// Engagement: above one chunk the streamed arm must actually
				// stream (and emit the stream trace stages); at the bypass
				// boundary and in the off arm it must not.
				if off.streamWrites != 0 {
					t.Errorf("store-and-forward arm recorded %d streamed writes", off.streamWrites)
				}
				if off.stages[trace.StageStreamWindow] || off.stages[trace.StageStreamStage] {
					t.Error("stream spans present with streaming off")
				}
				if size > 2<<20 {
					if on.streamWrites == 0 {
						t.Error("no streamed writes in the streaming arm")
					}
					if !on.stages[trace.StageStreamWindow] || !on.stages[trace.StageStreamStage] {
						t.Errorf("stream spans missing in streaming arm: %v", on.stages)
					}
				} else if on.streamWrites != 0 {
					t.Errorf("one-chunk objects must bypass streaming, got %d streamed writes",
						on.streamWrites)
				}
			})
		}
	}
}

// TestStreamingBoundsPeakStaging pins the headline memory claim: with
// store-and-forward the DPU stages a large object's segments roughly at
// object granularity, while streaming keeps the staging high-water mark
// bounded by the credit window (window x chunk per stream), far below the
// object size.
func TestStreamingBoundsPeakStaging(t *testing.T) {
	// One closed-loop writer, so the per-node high-water mark reflects one
	// stream's staging, not cross-op concurrency.
	const size = 16 << 20
	run := func(stream bool) (peak, streamed int64) {
		cfg := cluster.Config{Mode: cluster.DoCeph, Seed: 42}
		cfg.Messenger.Stream.Enable = stream
		cfg.Messenger.Stream.Window = 2
		cl := cluster.New(cfg)
		defer cl.Shutdown()
		if _, err := RunBench(cl, BenchConfig{
			Threads: 1, ObjectBytes: size, OpsPerThread: 4,
		}); err != nil {
			t.Fatal(err)
		}
		for _, n := range cl.Nodes {
			streamed += n.OSD.Stats().StreamWrites
			if st := n.Bridge.Proxy.Stats(); st.PeakStagingBytes > peak {
				peak = st.PeakStagingBytes
			}
		}
		return peak, streamed
	}
	offPeak, offStreamed := run(false)
	onPeak, onStreamed := run(true)
	if offPeak == 0 || onPeak == 0 {
		t.Fatalf("staging high-water not recorded: off=%d on=%d", offPeak, onPeak)
	}
	if offStreamed != 0 {
		t.Fatalf("store-and-forward arm streamed %d writes", offStreamed)
	}
	if onStreamed == 0 {
		t.Fatal("streaming did not engage")
	}
	// Store-and-forward must stage roughly a whole object's worth of
	// segments; streaming must stay bounded by the credit window — far
	// below the object size.
	if offPeak < size/2 {
		t.Errorf("store-and-forward peak staging %d suspiciously low for %d-byte objects",
			offPeak, size)
	}
	if onPeak >= size/2 {
		t.Errorf("streaming peak staging %d not bounded (object %d bytes)", onPeak, size)
	}
	if onPeak >= offPeak {
		t.Errorf("streaming peak staging %d did not improve on store-and-forward %d",
			onPeak, offPeak)
	}
	t.Logf("peak staging: store-and-forward %d, streaming %d (object %d)",
		offPeak, onPeak, size)
}

// TestMultiSeedDeterminismStreaming is the run-twice determinism gate with
// the streaming data plane live: pump procs, per-chunk transactions,
// credit-on-commit completers and replica chunk fan-out all run under
// virtual time, so two identical runs must agree on every headline metric
// and the byte-exact trace across a seed sweep.
func TestMultiSeedDeterminismStreaming(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 42}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := func() (int64, int64, uint64, string) {
				cfg := cluster.Config{Mode: cluster.DoCeph, Seed: seed, Trace: true}
				cfg.Messenger.Stream.Enable = true
				cl := cluster.New(cfg)
				defer cl.Shutdown()
				res, err := RunBench(cl, BenchConfig{
					Threads: 4, ObjectBytes: 4 << 20,
					Duration: sim.Second, Warmup: 200 * sim.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				spans := cl.Tracer.Spans()
				if err := trace.CheckInvariants(spans); err != nil {
					t.Errorf("trace invariants: %v", err)
				}
				var streamed int64
				for _, n := range cl.Nodes {
					streamed += n.OSD.Stats().StreamWrites
				}
				if streamed == 0 {
					t.Error("no writes streamed")
				}
				return res.Ops, int64(res.AvgLatency), cl.Env.Events(), chromeHash(spans)
			}
			o1, l1, e1, h1 := run()
			o2, l2, e2, h2 := run()
			if o1 != o2 || l1 != l2 || e1 != e2 || h1 != h2 {
				t.Errorf("streamed run not deterministic: ops %d/%d lat %d/%d events %d/%d trace %s/%s",
					o1, o2, l1, l2, e1, e2, h1, h2)
			}
		})
	}
}

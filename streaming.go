package doceph

import (
	"fmt"

	"doceph/internal/report"
)

// ---------------------------------------------------------------------------
// Streaming ablation: store-and-forward vs flow-controlled chunk pipelining
// for large objects, across credit-window sizes and both deployments.
//
// Store-and-forward (streaming off, the default) moves a large write as one
// monolithic frame: the whole object serializes through the messenger, then
// replication and the BlueStore WAL start, and on DoCeph the DPU proxy
// stages whole-transaction segments. Streaming splits the same write into
// ChunkBytes frames under a credit window: the OSD commits and fans out
// chunk k while chunk k+1 is still on the wire, and DPU staging is bounded
// by window x chunk instead of object size.

// StreamSizes are the object sizes of the streaming ablation — at and above
// the multi-MB regime where one object spans many DMA segments.
var StreamSizes = []int64{4 << 20, 16 << 20, 64 << 20}

// StreamWindows are the credit-window arms (chunks in flight per stream).
var StreamWindows = []int{2, 4, 8}

// StreamingResult is one row of the streaming ablation. Window 0 means
// store-and-forward (streaming off).
type StreamingResult struct {
	Name        string
	Mode        Mode
	ObjectBytes int64
	Window      int
	AvgLat      Duration
	P99         Duration
	MBps        float64
	HostUtil    float64
	// StreamWrites sums the OSDs' streamed-ingest counters (0 with
	// streaming off — the engagement check).
	StreamWrites int64
	// PeakStagingBytes is the max over nodes of the DPU proxy's staging
	// high-water mark (0 on Baseline). With streaming on it must stay
	// around window x chunk, far below the object size.
	PeakStagingBytes int64
}

// RunStreamingAblation measures large-object writes with streaming off
// (store-and-forward) and on at each credit window, on both deployments.
// The workload keeps a small closed loop so per-op pipelining — not
// cross-op concurrency — is what differentiates the arms.
func RunStreamingAblation(opts ExpOptions) ([]StreamingResult, error) {
	opts = opts.withDefaults()
	// Large objects + many closed-loop workers would swamp the fabric and
	// blur the per-op pipelining signal; cap the loop at 4 workers.
	if opts.Threads > 4 {
		opts.Threads = 4
	}

	type variant struct {
		name   string
		mode   Mode
		size   int64
		window int
	}
	var variants []variant
	for _, mode := range []Mode{Baseline, DoCeph} {
		prefix := "baseline"
		if mode == DoCeph {
			prefix = "doceph"
		}
		for _, size := range StreamSizes {
			variants = append(variants, variant{
				name: fmt.Sprintf("%s %dM store-fwd", prefix, size>>20),
				mode: mode, size: size,
			})
			for _, w := range StreamWindows {
				variants = append(variants, variant{
					name: fmt.Sprintf("%s %dM stream w=%d", prefix, size>>20, w),
					mode: mode, size: size, window: w,
				})
			}
		}
	}

	out := make([]StreamingResult, len(variants))
	err := runParallel(len(variants), func(i int) error {
		v := variants[i]
		r, err := runWorkloadCfg(v.mode, Link100G, v.size, BenchConfig{}, opts,
			func(c *ClusterConfig) {
				if v.window > 0 {
					c.Messenger.Stream.Enable = true
					c.Messenger.Stream.Window = v.window
				}
			})
		if err != nil {
			return fmt.Errorf("streaming %q: %w", v.name, err)
		}
		res := StreamingResult{
			Name: v.name, Mode: v.mode, ObjectBytes: v.size, Window: v.window,
			AvgLat:   r.bench.AvgLatency,
			P99:      r.bench.P99,
			MBps:     r.bench.ThroughputBps() / 1e6,
			HostUtil: r.hostUtil,
		}
		res.StreamWrites = r.streamWrites
		res.PeakStagingBytes = r.peakStaging
		if v.window > 0 && res.StreamWrites == 0 {
			return fmt.Errorf("streaming %q: streaming enabled but no streamed writes recorded", v.name)
		}
		if v.window == 0 && res.StreamWrites != 0 {
			return fmt.Errorf("streaming %q: store-and-forward arm recorded %d streamed writes",
				v.name, res.StreamWrites)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StreamingTable renders the streaming ablation.
func StreamingTable(rows []StreamingResult) *report.Table {
	t := &report.Table{
		Title: "Streaming data plane: store-and-forward vs chunk pipelining (writes)",
		Header: []string{"variant", "avg lat (ms)", "p99 (ms)", "MB/s",
			"host CPU", "streamed", "peak staging"},
	}
	for _, r := range rows {
		peak := "-"
		if r.PeakStagingBytes > 0 {
			peak = report.MB(r.PeakStagingBytes)
		}
		t.AddRow(r.Name,
			report.F2(r.AvgLat.Seconds()*1e3),
			report.F2(r.P99.Seconds()*1e3),
			report.F2(r.MBps),
			report.Pct(r.HostUtil),
			fmt.Sprint(r.StreamWrites), peak)
	}
	t.AddNote("stream w=N: 2MiB chunks (one DMA segment each) under an N-chunk credit window (off by default); peak staging = DPU staging-buffer high-water mark — bounded by window x chunk when streaming, by object size when not")
	return t
}
